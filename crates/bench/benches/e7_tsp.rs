//! E7 — Section 5, "Computation of Sub-Optimals": greedy TSP chains on
//! complete geometric graphs, declarative versus the procedural greedy
//! chain and nearest-neighbour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gbc_baselines::tsp::{greedy_chain, nearest_neighbour};
use gbc_greedy::{tsp, workload};

fn bench_tsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_tsp");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[16usize, 32, 64, 128] {
        let g = workload::complete_geometric(n, 42);
        group.throughput(Throughput::Elements(g.num_edges() as u64));

        group.bench_with_input(BenchmarkId::new("declarative_chain", n), &g, |b, g| {
            let compiled = tsp::compiled();
            let edb = g.to_edb();
            b.iter(|| {
                let run = compiled.run_greedy(&edb).unwrap();
                run.stats.gamma_steps
            });
        });

        group.bench_with_input(BenchmarkId::new("procedural_chain", n), &g, |b, g| {
            b.iter(|| greedy_chain(g.n, &g.edges).len());
        });

        group.bench_with_input(BenchmarkId::new("nearest_neighbour", n), &g, |b, g| {
            b.iter(|| nearest_neighbour(g.n, &g.edges, 0).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tsp);
criterion_main!(benches);
