//! Pluggable non-determinism for the choice fixpoint.
//!
//! The paper's γ operator "arbitrarily selects a member" of the new
//! consequences (Section 2). Different selection policies produce
//! different stable models; a [`Chooser`] encapsulates the policy.
//! Candidate lists handed to a chooser are always sorted, so a given
//! chooser yields a reproducible run.

use gbc_telemetry::rng::Rng;

/// A selection policy over a non-empty candidate list.
pub trait Chooser {
    /// Pick an index in `0..n`. `n ≥ 1`.
    fn pick(&mut self, n: usize) -> usize;
}

/// Always picks the first (smallest, since candidate lists are sorted)
/// candidate — the canonical deterministic run.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeterministicFirst;

impl Chooser for DeterministicFirst {
    fn pick(&mut self, _n: usize) -> usize {
        0
    }
}

/// Seeded uniform choice — samples the space of stable models
/// reproducibly.
#[derive(Clone, Debug)]
pub struct SeededRandom {
    rng: Rng,
}

impl SeededRandom {
    /// A chooser with a fixed seed.
    pub fn new(seed: u64) -> SeededRandom {
        SeededRandom { rng: Rng::new(seed) }
    }
}

impl Chooser for SeededRandom {
    fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        self.rng.below_usize(n)
    }
}

/// Replays a fixed pick sequence (cycling on exhaustion) — lets tests
/// steer the fixpoint down a specific branch.
#[derive(Clone, Debug)]
pub struct Scripted {
    picks: Vec<usize>,
    at: usize,
}

impl Scripted {
    /// A chooser replaying `picks` (each taken modulo the candidate
    /// count at its step).
    pub fn new(picks: Vec<usize>) -> Scripted {
        Scripted { picks, at: 0 }
    }
}

impl Chooser for Scripted {
    fn pick(&mut self, n: usize) -> usize {
        let p = self.picks.get(self.at).copied().unwrap_or(0);
        self.at += 1;
        p % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_first_is_zero() {
        let mut c = DeterministicFirst;
        assert_eq!(c.pick(5), 0);
        assert_eq!(c.pick(1), 0);
    }

    #[test]
    fn seeded_random_is_reproducible_and_in_range() {
        let mut a = SeededRandom::new(42);
        let mut b = SeededRandom::new(42);
        for n in [1usize, 2, 10, 100] {
            let pa = a.pick(n);
            assert_eq!(pa, b.pick(n));
            assert!(pa < n);
        }
    }

    #[test]
    fn scripted_replays_and_wraps() {
        let mut c = Scripted::new(vec![3, 7]);
        assert_eq!(c.pick(5), 3);
        assert_eq!(c.pick(5), 2); // 7 % 5
        assert_eq!(c.pick(5), 0); // exhausted → 0
    }
}
