//! Golden tests for the `gbc check` diagnostics pipeline over the
//! negative corpus in `programs/bad/`.
//!
//! Every fixture `<name>.dl` has two checked-in snapshots:
//!
//! * `<name>.expect` — the rustc-style rendering (exactly what `gbc
//!   check` prints above the summary);
//! * `<name>.diag.json` — the `--diag-json` serialisation.
//!
//! Fixtures named `gbcNNN_*.dl` must emit diagnostic code `GBCNNN`;
//! `kruskal_example8.dl` (the paper's Example 8) must emit `GBC018`.
//!
//! Regenerate the snapshots with:
//!
//! ```text
//! GBC_BLESS=1 cargo test --test diagnostics_golden
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use gbc_ast::diag::render_all;
use gbc_ast::{Diagnostic, SourceMap};
use gbc_core::{check_program, diagnostics_to_json};

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; fixtures live at the repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
}

/// Run the same pipeline `gbc check` runs: parse (a failure becomes the
/// GBC001 diagnostic), then the full static-check engine.
fn check_fixture(root: &Path, rel: &str) -> (Vec<Diagnostic>, SourceMap) {
    let text = fs::read_to_string(root.join(rel)).expect("fixture readable");
    let mut sm = SourceMap::new();
    // The display name is the repo-relative path, so snapshots match a
    // `gbc check programs/bad/<name>.dl` run from the repo root.
    sm.add_file(rel, &text);
    let diags = match gbc_parser::parse_program(&sm.source()) {
        Err(e) => vec![e.to_diagnostic()],
        Ok(program) => check_program(&program).diagnostics,
    };
    (diags, sm)
}

fn compare_or_bless(path: &Path, actual: &str) {
    if std::env::var_os("GBC_BLESS").is_some() {
        fs::write(path, actual).expect("write snapshot");
        return;
    }
    let expected = fs::read_to_string(path)
        .unwrap_or_else(|_| panic!("missing snapshot {} — run with GBC_BLESS=1", path.display()));
    assert_eq!(
        actual,
        expected,
        "snapshot mismatch for {} — run with GBC_BLESS=1 to regenerate",
        path.display()
    );
}

#[test]
fn negative_corpus_matches_snapshots() {
    let root = repo_root();
    let dir = root.join("programs/bad");
    let mut fixtures: Vec<String> = fs::read_dir(&dir)
        .expect("programs/bad exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.ends_with(".dl").then_some(name)
        })
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty(), "no fixtures in programs/bad");

    for name in &fixtures {
        let rel = format!("programs/bad/{name}");
        let (diags, sm) = check_fixture(&root, &rel);
        assert!(!diags.is_empty(), "{rel}: negative fixture produced no diagnostics");

        // The fixture's primary code must be among the emitted codes.
        let stem = name.trim_end_matches(".dl");
        let want =
            if stem == "kruskal_example8" { "GBC018".to_owned() } else { stem[..6].to_uppercase() };
        assert!(
            diags.iter().any(|d| d.code == want),
            "{rel}: expected {want}, got {:?}",
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );

        let rendered = render_all(&diags, &sm);
        compare_or_bless(&dir.join(format!("{stem}.expect")), &rendered);

        let mut json = diagnostics_to_json(&diags, &sm).pretty();
        json.push('\n');
        compare_or_bless(&dir.join(format!("{stem}.diag.json")), &json);
    }
}

/// Every code in the registry has at least one fixture: the corpus is
/// the registry's executable documentation.
#[test]
fn every_registry_code_has_a_fixture() {
    let root = repo_root();
    let dir = root.join("programs/bad");
    let mut covered: Vec<String> = Vec::new();
    for e in fs::read_dir(&dir).expect("programs/bad exists") {
        let name = e.unwrap().file_name().into_string().unwrap();
        if !name.ends_with(".dl") {
            continue;
        }
        let rel = format!("programs/bad/{name}");
        let (diags, _) = check_fixture(&root, &rel);
        for d in &diags {
            if !covered.contains(&d.code.to_owned()) {
                covered.push(d.code.to_owned());
            }
        }
    }
    for code in [
        "GBC001", "GBC002", "GBC003", "GBC004", "GBC005", "GBC006", "GBC010", "GBC011", "GBC012",
        "GBC013", "GBC014", "GBC015", "GBC016", "GBC017", "GBC018", "GBC020", "GBC021", "GBC022",
        "GBC023", "GBC024", "GBC025", "GBC026", "GBC027", "GBC028", "GBC029", "GBC030", "GBC031",
        "GBC032",
    ] {
        assert!(covered.contains(&code.to_owned()), "no fixture emits {code}");
    }
}
