//! Golden observability test — the telemetry counters for a fixed
//! workload are part of the repo's contract.
//!
//! Prim (Example 4, the paper's E1 complexity claim) runs on a
//! fixed-seed 64-node graph. Everything in the pipeline is
//! deterministic — the workload generator (in-tree xoshiro256**), the
//! greedy executor's sorted candidate handling, and the (R,Q,L)
//! structure — so every counter must come out *exactly* the same on
//! every run, on every machine. A drift in any of these numbers means
//! the executor's operational behaviour changed, which is precisely
//! what this test is here to catch.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gbc_ast::{SourceMap, Value};
use gbc_core::GreedyConfig;
use gbc_greedy::{prim, workload};
use gbc_storage::{Database, ProvenanceArena};
use gbc_telemetry::{BufferTrace, JournalBuffer, Telemetry};

/// The fixed workload: 64 nodes, 192 extra edges, costs ≤ 1000, seed 42.
fn fixed_graph() -> gbc_greedy::graph::Graph {
    workload::connected_graph(64, 192, 1000, 42)
}

#[test]
fn prim_counters_are_golden() {
    let g = fixed_graph();
    let (compiled, edb) = prim::prepared(&g, 0);
    let tel = Telemetry::enabled();
    let run = compiled.run_greedy_telemetry(&edb, GreedyConfig::default(), &tel).unwrap();
    let snap = &run.snapshot;

    // Structural facts first: a spanning tree of 64 nodes has 63 edges,
    // and the γ operator commits exactly one stage per tree edge
    // (Section 3's tuple ↔ stage bijection; the exit fact is ground and
    // loads with the program, so it is not a γ commit).
    assert_eq!(prim::decode(&run).len(), 63);
    assert_eq!(snap.gamma_steps, 63, "γ steps = n − 1");
    assert_eq!(run.stats.gamma_steps, 63);

    // The golden numbers. Hard-coded from the first recorded run;
    // byte-for-byte stable because every stage of the pipeline is
    // deterministic. If a legitimate executor change moves them, update
    // them *in the same commit* and say why in the message.
    assert_eq!(snap.heap_inserts, GOLDEN_HEAP_INSERTS);
    assert_eq!(snap.heap_replaces, GOLDEN_HEAP_REPLACES);
    assert_eq!(snap.heap_pops, GOLDEN_HEAP_POPS);
    assert_eq!(snap.discarded_pops, GOLDEN_DISCARDED_POPS);
    assert_eq!(snap.congruence_replacements, GOLDEN_CONGRUENCE_REPLACEMENTS);
    assert_eq!(snap.rql_dominated, GOLDEN_RQL_DOMINATED);
    assert_eq!(snap.rql_used_blocked, GOLDEN_RQL_USED_BLOCKED);
    assert_eq!(snap.queue_peak, GOLDEN_QUEUE_PEAK);
    assert_eq!(snap.tuples_derived, GOLDEN_TUPLES_DERIVED);

    // E1's machine-independent bound: heap operations stay within a
    // small constant of e·log₂e.
    let e = g.num_edges() as f64;
    let ratio = snap.heap_ops() as f64 / (e * e.log2());
    assert!(ratio < 3.0, "heap ops per e·lg e must stay O(1), got {ratio}");
}

// One queued representative per r-congruence class means exactly one
// pop per committed stage: 63 pops, zero discards — the paper's "no
// wasted pops" property, checked to the tuple.
const GOLDEN_HEAP_INSERTS: u64 = 63;
const GOLDEN_HEAP_REPLACES: u64 = 93;
const GOLDEN_HEAP_POPS: u64 = 63;
const GOLDEN_DISCARDED_POPS: u64 = 0;
const GOLDEN_CONGRUENCE_REPLACEMENTS: u64 = 93;
const GOLDEN_RQL_DOMINATED: u64 = 99;
const GOLDEN_RQL_USED_BLOCKED: u64 = 244;
const GOLDEN_QUEUE_PEAK: u64 = 45;
const GOLDEN_TUPLES_DERIVED: u64 = 510;

/// E2 (sorting, Example 5) pinned alongside Prim: a fixed-seed item
/// list must produce exactly these counters. Sorting exercises the
/// γ/(R,Q,L) path with *no* flat rules, so this golden pins the
/// executor loop itself (feed, pop, commit) where the Prim golden
/// mostly pins seminaive + congruence behaviour.
#[test]
fn sort_counters_are_golden() {
    let items = gbc_greedy::workload::random_items(256, 42);
    let compiled = gbc_greedy::sorting::compiled();
    let edb = gbc_greedy::sorting::edb(&items);
    let tel = Telemetry::enabled();
    let run = compiled.run_greedy_telemetry(&edb, GreedyConfig::default(), &tel).unwrap();
    let snap = &run.snapshot;

    // One γ commit per item: the tuple ↔ stage bijection of Section 3.
    assert_eq!(snap.gamma_steps, 256, "γ steps = n");
    // Every item is its own congruence class (the key is the whole
    // row), so the heap sees exactly one insert and one pop per item —
    // heap-sort, operation for operation.
    assert_eq!(snap.heap_inserts, GOLDEN_SORT_HEAP_INSERTS);
    assert_eq!(snap.heap_replaces, GOLDEN_SORT_HEAP_REPLACES);
    assert_eq!(snap.heap_pops, GOLDEN_SORT_HEAP_POPS);
    assert_eq!(snap.discarded_pops, GOLDEN_SORT_DISCARDED_POPS);
    assert_eq!(snap.queue_peak, GOLDEN_SORT_QUEUE_PEAK);
    assert_eq!(snap.tuples_derived, GOLDEN_SORT_TUPLES_DERIVED);
}

const GOLDEN_SORT_HEAP_INSERTS: u64 = 256;
const GOLDEN_SORT_HEAP_REPLACES: u64 = 0;
const GOLDEN_SORT_HEAP_POPS: u64 = 256;
const GOLDEN_SORT_DISCARDED_POPS: u64 = 0;
const GOLDEN_SORT_QUEUE_PEAK: u64 = 256;
const GOLDEN_SORT_TUPLES_DERIVED: u64 = 0;

/// The sort workload's choice audit, pinned: with the event journal
/// attached, the greedy executor reports exactly one `choice_audit`
/// event per γ commit, each having considered exactly one candidate
/// (the paper's "no wasted pops" property restated over the audit
/// trail), and the `diffChoice` counter stays at zero — sorting has a
/// fresh congruence class per item, so nothing ever conflicts.
#[test]
fn sort_choice_audit_is_golden() {
    let items = gbc_greedy::workload::random_items(256, 42);
    let compiled = gbc_greedy::sorting::compiled();
    let edb = gbc_greedy::sorting::edb(&items);
    let journal = Arc::new(JournalBuffer::new());
    let tel = Telemetry::enabled().with_trace(journal.clone());
    let run = compiled.run_greedy_telemetry(&edb, GreedyConfig::default(), &tel).unwrap();
    let snap = &run.snapshot;

    assert_eq!(snap.choice_candidates_considered, GOLDEN_SORT_CANDIDATES_CONSIDERED);
    assert_eq!(snap.diffchoice_rejections, 0);
    let audits = journal
        .events()
        .iter()
        .filter(|e| e.to_string().contains("\"type\":\"choice_audit\""))
        .count();
    assert_eq!(audits, GOLDEN_SORT_CHOICE_AUDITS);
}

const GOLDEN_SORT_CANDIDATES_CONSIDERED: u64 = 256;
const GOLDEN_SORT_CHOICE_AUDITS: usize = 256;

/// Example 8 (Kruskal) on the small shipped graph, under the generic
/// Choice Fixpoint with provenance recording on. The program is *not*
/// stage-stratified (the paper's point), so this pins the γ audit of
/// the fallback path: candidate counts, `diffChoice` rejections — both
/// as counters and as recorded provenance — and the journal's
/// `choice_audit` event count.
#[test]
fn kruskal_choice_audit_is_golden() {
    let (compiled, mut edb) = kruskal_small();
    assert!(!compiled.has_greedy_plan(), "Example 8 must take the generic path");
    let arena = ProvenanceArena::shared();
    edb.set_provenance(Arc::clone(&arena));
    let journal = Arc::new(JournalBuffer::new());
    let tel = Telemetry::enabled().with_trace(journal.clone());
    let run = compiled.run_telemetry(&edb, &tel).unwrap();
    let snap = &run.snapshot;

    assert_eq!(snap.choice_candidates_considered, GOLDEN_KRUSKAL_CANDIDATES_CONSIDERED);
    assert_eq!(snap.diffchoice_rejections, GOLDEN_KRUSKAL_DIFFCHOICE_REJECTIONS);
    let recorded = arena.rejections().iter().filter(|r| r.reason == "diffchoice").count();
    assert_eq!(recorded as u64, GOLDEN_KRUSKAL_DIFFCHOICE_RECORDED);
    let audits = journal
        .events()
        .iter()
        .filter(|e| e.to_string().contains("\"type\":\"choice_audit\""))
        .count();
    assert_eq!(audits, GOLDEN_KRUSKAL_CHOICE_AUDITS);
    assert!(
        run.db.count(gbc_ast::Symbol::intern("kruskal")) >= 5,
        "a spanning forest's worth of accepted edges"
    );
}

// 724 candidate instantiations across 33 γ decision points; 563 of
// them lose a `diffChoice` comparison (the counter sees every loss,
// the arena dedups repeats of the same (rule, goal, left, attempted)
// conflict down to 136 distinct rejections).
const GOLDEN_KRUSKAL_CANDIDATES_CONSIDERED: u64 = 724;
const GOLDEN_KRUSKAL_DIFFCHOICE_REJECTIONS: u64 = 563;
const GOLDEN_KRUSKAL_DIFFCHOICE_RECORDED: u64 = 136;
const GOLDEN_KRUSKAL_CHOICE_AUDITS: usize = 33;

/// Example 8's rules over the shipped `graph_small.dl` facts.
fn kruskal_small() -> (gbc_core::Compiled, Database) {
    let program = gbc_parser::parse_program(gbc_greedy::kruskal::PROGRAM).unwrap();
    let compiled = gbc_core::compile(program).unwrap();
    (compiled, kruskal_edb())
}

/// The small 6-node / 8-edge graph the audit and surface goldens share.
fn kruskal_edb() -> Database {
    let mut edb = Database::new();
    let edges =
        [(0, 1, 4), (0, 2, 3), (1, 2, 1), (1, 3, 2), (2, 3, 4), (3, 4, 2), (4, 5, 6), (2, 5, 5)];
    for (x, y, c) in edges {
        for (a, b) in [(x, y), (y, x)] {
            edb.insert_values("g", vec![Value::int(a), Value::int(b), Value::int(c)]);
        }
    }
    for n in 0..6 {
        edb.insert_values("node", vec![Value::int(n)]);
    }
    edb
}

// ---------------------------------------------------------------------------
// Decoded-surface goldens (pre-PR7 snapshots).
//
// `gbc run` model output, `gbc explain` trees and the choice-audit
// journal must render *surface* values — symbols, integers, functor
// terms — never storage-internal ids. The snapshots under
// `tests/goldens/` were captured before the columnar dictionary
// encoding landed (PR 7) and pin the decode boundary byte-for-byte.
//
// Regenerate (only for a deliberate surface-format change) with:
//
// ```text
// GBC_BLESS=1 cargo test --test observability_golden
// ```
// ---------------------------------------------------------------------------

fn goldens_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; goldens live at the repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .join("tests")
        .join("goldens")
}

fn compare_or_bless(name: &str, actual: &str) {
    let path = goldens_dir().join(name);
    if std::env::var_os("GBC_BLESS").is_some() {
        fs::create_dir_all(goldens_dir()).expect("goldens dir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden {} — run with GBC_BLESS=1", path.display()));
    assert_eq!(
        actual,
        expected,
        "golden mismatch for {} — output must stay decoded surface syntax, \
         byte-identical to the pre-PR7 snapshot",
        path.display()
    );
}

/// The journal as JSON-lines, minus worker-lane events (the only event
/// kind carrying wall-clock, and absent from serial runs anyway).
fn journal_lines(journal: &JournalBuffer) -> String {
    journal
        .to_jsonl()
        .lines()
        .filter(|l| !l.contains("\"type\":\"worker_chunk\""))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Kruskal (Example 8, generic Choice Fixpoint) on the small graph:
/// the computed model, the explain tree for every accepted edge, and
/// the event journal must all match their pre-PR7 decoded snapshots.
#[test]
fn kruskal_surface_output_is_golden() {
    let mut sm = SourceMap::new();
    sm.add_file("kruskal.dl", gbc_greedy::kruskal::PROGRAM);
    let program = gbc_parser::parse_program(&sm.source()).unwrap();
    let compiled = gbc_core::compile(program.clone()).unwrap();
    let mut edb = kruskal_edb();
    let arena = ProvenanceArena::shared();
    edb.set_provenance(Arc::clone(&arena));
    let journal = Arc::new(JournalBuffer::new());
    let tel = Telemetry::enabled().with_trace(journal.clone());
    let run = compiled.run_telemetry(&edb, &tel).unwrap();

    compare_or_bless("kruskal_run.golden", &format!("{}\n", run.db.canonical_form()));

    let query = gbc_parser::parse_rule("query <- kruskal(X, Y, C, I).").unwrap();
    let explain = gbc_core::explain::explain_atom(&program, &sm, &run.db, &arena, &query).unwrap();
    compare_or_bless("kruskal_explain.golden", &explain);

    compare_or_bless("kruskal_journal.golden", &journal_lines(&journal));
}

/// Sorting (Example 5, greedy executor) over a small fixed-seed item
/// list: model, explain tree for the rank-1 fact, and journal, all
/// pinned against the pre-PR7 decoded snapshots.
#[test]
fn sort_surface_output_is_golden() {
    let items = gbc_greedy::workload::random_items(8, 42);
    let mut sm = SourceMap::new();
    sm.add_file("sorting.dl", gbc_greedy::sorting::PROGRAM);
    let program = gbc_parser::parse_program(&sm.source()).unwrap();
    let compiled = gbc_core::compile(program.clone()).unwrap();
    let mut edb = gbc_greedy::sorting::edb(&items);
    let arena = ProvenanceArena::shared();
    edb.set_provenance(Arc::clone(&arena));
    let journal = Arc::new(JournalBuffer::new());
    let tel = Telemetry::enabled().with_trace(journal.clone());
    let run = compiled.run_greedy_telemetry(&edb, GreedyConfig::default(), &tel).unwrap();

    compare_or_bless("sort_run.golden", &format!("{}\n", run.db.canonical_form()));

    let query = gbc_parser::parse_rule("query <- sp(X, C, 1).").unwrap();
    let explain = gbc_core::explain::explain_atom(&program, &sm, &run.db, &arena, &query).unwrap();
    compare_or_bless("sort_explain.golden", &explain);

    compare_or_bless("sort_journal.golden", &journal_lines(&journal));
}

/// Two identical runs produce byte-identical counter reports and
/// byte-identical traces.
#[test]
fn observability_is_deterministic_across_runs() {
    let mut reports = Vec::new();
    let mut traces = Vec::new();
    for _ in 0..2 {
        let g = fixed_graph();
        let (compiled, edb) = prim::prepared(&g, 0);
        let buf = Arc::new(BufferTrace::new());
        let tel = Telemetry::enabled().with_trace(buf.clone());
        let run = compiled.run_greedy_telemetry(&edb, GreedyConfig::default(), &tel).unwrap();
        // The counters section of the JSON report (phase timings are
        // wall-clock and excluded by construction here).
        reports.push(run.snapshot.to_json().pretty());
        traces.push(buf.lines().join("\n"));
    }
    assert_eq!(reports[0], reports[1], "counter JSON must be byte-identical");
    assert_eq!(traces[0], traces[1], "trace must be byte-identical");
    assert!(traces[0].contains("γ stage"), "trace shows stage commits");
}
