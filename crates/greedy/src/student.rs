//! Examples 1–2 — one student per course and one course per student —
//! and the `bi_st_c` combination of choice and `least` from Section 2.
//! These drive the E5 semantics experiment: the paper lists the exact
//! choice models, and the exhaustive enumerator must reproduce them.

use gbc_ast::{Program, Value};
use gbc_engine::enumerate::all_choice_models;
use gbc_engine::EngineError;
use gbc_storage::Database;

/// Example 1's rule.
pub const PROGRAM: &str =
    "a_st(St, Crs, G) <- takes(St, Crs, G), choice(Crs, St), choice(St, Crs).";

/// The Section 2 combination: bi-injective pairs with the lowest grade
/// above 1.
pub const PROGRAM_BI: &str = "bi_st_c(St, Crs, G) <- takes(St, Crs, G), G > 1, least(G),
choice(St, Crs), choice(Crs, St).";

/// The paper's `takes` facts (Example 1, with grades).
pub fn paper_facts() -> Database {
    let mut db = Database::new();
    for (s, c, g) in
        [("andy", "engl", 4), ("mark", "engl", 2), ("ann", "math", 3), ("mark", "math", 2)]
    {
        db.insert_values("takes", vec![Value::sym(s), Value::sym(c), Value::int(g)]);
    }
    db
}

fn parse(src: &str) -> Program {
    gbc_parser::parse_program(src).expect("static program text")
}

/// All choice models of Example 1 over the paper's facts — the paper
/// lists exactly three (M1, M2, M3).
pub fn enumerate_models() -> Result<Vec<Database>, EngineError> {
    all_choice_models(&parse(PROGRAM), &paper_facts())
}

/// All stable models of the `bi_st_c` program — the paper lists two.
pub fn enumerate_bi_models() -> Result<Vec<Database>, EngineError> {
    all_choice_models(&parse(PROGRAM_BI), &paper_facts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::Symbol;

    #[test]
    fn exactly_three_models_like_the_paper() {
        let models = enumerate_models().unwrap();
        assert_eq!(models.len(), 3);
        for m in &models {
            // Each model assigns both courses.
            assert_eq!(m.count(Symbol::intern("a_st")), 2);
        }
    }

    #[test]
    fn exactly_two_bi_models_like_the_paper() {
        let models = enumerate_bi_models().unwrap();
        let sigs: Vec<String> = models
            .iter()
            .map(|m| {
                m.facts_of(Symbol::intern("bi_st_c"))
                    .iter()
                    .map(|r| format!("{}-{}-{}", r[0], r[1], r[2]))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        assert_eq!(models.len(), 2, "{sigs:?}");
        assert!(sigs.contains(&"mark-engl-2".to_string()));
        assert!(sigs.contains(&"mark-math-2".to_string()));
    }
}
