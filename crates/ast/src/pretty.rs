//! Pretty-printing in the paper's surface syntax.
//!
//! The printed form parses back with `gbc-parser` (round-trip tested
//! there): `prm(X,Y,C,I) <- next(I), new_g(X,Y,C,J), J < I,
//! least(C,(I)), choice((Y),(X)).`

use std::fmt;

use crate::literal::{Atom, CmpOp, Literal};
use crate::program::Program;
use crate::rule::Rule;
use crate::term::{ArithOp, Expr, Term};

/// Borrowing wrapper that prints a [`Term`] with surface variable names
/// taken from the owning rule.
struct TermWith<'a> {
    term: &'a Term,
    names: &'a [String],
}

impl fmt::Display for TermWith<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.term {
            Term::Var(v) => match self.names.get(v.index()) {
                Some(n) => f.write_str(n),
                None => write!(f, "{v}"),
            },
            Term::Const(c) => write!(f, "{c}"),
            Term::Func(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}", TermWith { term: a, names: self.names })?;
                }
                f.write_str(")")
            }
        }
    }
}

struct ExprWith<'a> {
    expr: &'a Expr,
    names: &'a [String],
}

impl fmt::Display for ExprWith<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.expr {
            Expr::Term(t) => write!(f, "{}", TermWith { term: t, names: self.names }),
            Expr::Binary(op, l, r) => {
                let (lw, rw) = (
                    ExprWith { expr: l, names: self.names },
                    ExprWith { expr: r, names: self.names },
                );
                match op {
                    ArithOp::Add => write!(f, "({lw} + {rw})"),
                    ArithOp::Sub => write!(f, "({lw} - {rw})"),
                    ArithOp::Mul => write!(f, "({lw} * {rw})"),
                    ArithOp::Div => write!(f, "({lw} / {rw})"),
                    ArithOp::Mod => write!(f, "({lw} mod {rw})"),
                    ArithOp::Max => write!(f, "max({lw},{rw})"),
                    ArithOp::Min => write!(f, "min({lw},{rw})"),
                }
            }
            Expr::Neg(e) => write!(f, "(-{})", ExprWith { expr: e, names: self.names }),
        }
    }
}

fn fmt_tuple(f: &mut fmt::Formatter<'_>, ts: &[Term], names: &[String]) -> fmt::Result {
    f.write_str("(")?;
    for (i, t) in ts.iter().enumerate() {
        if i > 0 {
            f.write_str(",")?;
        }
        write!(f, "{}", TermWith { term: t, names })?;
    }
    f.write_str(")")
}

fn fmt_atom(f: &mut fmt::Formatter<'_>, a: &Atom, names: &[String]) -> fmt::Result {
    write!(f, "{}", a.pred)?;
    if !a.args.is_empty() {
        fmt_tuple(f, &a.args, names)?;
    }
    Ok(())
}

fn fmt_literal(f: &mut fmt::Formatter<'_>, l: &Literal, names: &[String]) -> fmt::Result {
    match l {
        Literal::Pos(a) => fmt_atom(f, a, names),
        Literal::Neg(a) => {
            f.write_str("not ")?;
            fmt_atom(f, a, names)
        }
        Literal::Compare { op, lhs, rhs } => {
            let opstr = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            write!(
                f,
                "{} {} {}",
                ExprWith { expr: lhs, names },
                opstr,
                ExprWith { expr: rhs, names }
            )
        }
        Literal::Choice { left, right } => {
            f.write_str("choice(")?;
            fmt_tuple(f, left, names)?;
            f.write_str(",")?;
            fmt_tuple(f, right, names)?;
            f.write_str(")")
        }
        Literal::Least { cost, group } | Literal::Most { cost, group } => {
            let kw = if matches!(l, Literal::Least { .. }) { "least" } else { "most" };
            write!(f, "{kw}({}", TermWith { term: cost, names })?;
            if !group.is_empty() {
                f.write_str(",")?;
                fmt_tuple(f, group, names)?;
            }
            f.write_str(")")
        }
        Literal::Next { var } => match names.get(var.index()) {
            Some(n) => write!(f, "next({n})"),
            None => write!(f, "next({var})"),
        },
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_atom(f, &self.head, &self.var_names)?;
        if !self.body.is_empty() {
            f.write_str(" <- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_literal(f, l, &self.var_names)?;
            }
        }
        f.write_str(".")
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_atom(f, self, &[])
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarId;

    #[test]
    fn rule_prints_in_paper_syntax() {
        // prm(X,Y,C,I) <- next(I), new_g(X,Y,C,J), J < I, least(C,(I)), choice((Y),(X)).
        let names: Vec<String> = ["X", "Y", "C", "I", "J"].iter().map(|s| s.to_string()).collect();
        let r = Rule::new(
            Atom::new("prm", vec![Term::var(0), Term::var(1), Term::var(2), Term::var(3)]),
            vec![
                Literal::Next { var: VarId(3) },
                Literal::pos("new_g", vec![Term::var(0), Term::var(1), Term::var(2), Term::var(4)]),
                Literal::cmp(CmpOp::Lt, Expr::var(4), Expr::var(3)),
                Literal::Least { cost: Term::var(2), group: vec![Term::var(3)] },
                Literal::Choice { left: vec![Term::var(1)], right: vec![Term::var(0)] },
            ],
            names,
        );
        assert_eq!(
            r.to_string(),
            "prm(X,Y,C,I) <- next(I), new_g(X,Y,C,J), J < I, least(C,(I)), choice((Y),(X))."
        );
    }

    #[test]
    fn fact_prints_without_arrow() {
        let r = Rule::fact(Atom::new("g", vec![Term::sym("a"), Term::sym("b"), Term::int(3)]));
        assert_eq!(r.to_string(), "g(a,b,3).");
    }

    #[test]
    fn zero_arity_atom_prints_bare() {
        let r = Rule::fact(Atom::new("done", vec![]));
        assert_eq!(r.to_string(), "done.");
    }

    #[test]
    fn negation_and_arith_print() {
        let names: Vec<String> = ["X", "I", "J"].iter().map(|s| s.to_string()).collect();
        let r = Rule::new(
            Atom::new("p", vec![Term::var(0), Term::var(1)]),
            vec![
                Literal::pos("q", vec![Term::var(0), Term::var(2)]),
                Literal::neg("r", vec![Term::var(0)]),
                Literal::cmp(
                    CmpOp::Eq,
                    Expr::var(1),
                    Expr::binary(ArithOp::Max, Expr::var(2), Expr::int(0)),
                ),
            ],
            names,
        );
        assert_eq!(r.to_string(), "p(X,I) <- q(X,J), not r(X), I = max(J,0).");
    }
}
