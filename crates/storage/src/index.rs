//! Hash indices on column subsets of a relation.

use gbc_ast::Value;

use crate::fx::FxHashMap;
use crate::tuple::Row;

/// A hash index mapping the projection of a row onto `key_cols` to the
/// list of matching **row ids** — positions in the owning relation's
/// insertion-ordered arena. Storing `u32` ids instead of cloned rows
/// keeps an index at four bytes per entry and makes it valid across
/// `Relation::clone()` (the arena is copied verbatim, so ids keep
/// pointing at the same rows). Built once per (relation, column-set)
/// pair on first use and maintained incrementally as the relation
/// grows — the "availability of indices" assumption of the paper's
/// Section 6 cost model.
#[derive(Clone, Debug)]
pub struct Index {
    key_cols: Vec<usize>,
    map: FxHashMap<Vec<Value>, Vec<u32>>,
}

impl Index {
    /// Build an index over an arena of rows keyed on `key_cols`. Row
    /// ids are the positions in `rows`.
    pub fn build(key_cols: Vec<usize>, rows: &[Row]) -> Index {
        let mut idx = Index { key_cols, map: FxHashMap::default() };
        for (id, r) in rows.iter().enumerate() {
            idx.insert(r, id as u32);
        }
        idx
    }

    /// The indexed columns.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Add a row with its arena position (called by the owning relation
    /// on insert).
    pub fn insert(&mut self, row: &Row, id: u32) {
        let key = row.project(&self.key_cols);
        self.map.entry(key).or_default().push(id);
    }

    /// Ids of rows whose projection equals `key`, in insertion order.
    pub fn get(&self, key: &[Value]) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::int(v)).collect())
    }

    #[test]
    fn lookup_by_single_column() {
        let rows = [row(&[1, 10]), row(&[1, 20]), row(&[2, 30])];
        let idx = Index::build(vec![0], &rows);
        assert_eq!(idx.get(&[Value::int(1)]), &[0, 1]);
        assert_eq!(idx.get(&[Value::int(2)]), &[2]);
        assert_eq!(idx.get(&[Value::int(9)]), &[] as &[u32]);
    }

    #[test]
    fn lookup_by_multiple_columns_respects_order() {
        let rows = [row(&[1, 2, 3]), row(&[2, 1, 4])];
        let idx = Index::build(vec![1, 0], &rows);
        // Key is (col1, col0).
        assert_eq!(idx.get(&[Value::int(2), Value::int(1)]), &[0]);
        assert_eq!(idx.get(&[Value::int(1), Value::int(2)]), &[1]);
    }

    #[test]
    fn incremental_insert_extends_the_index() {
        let mut idx = Index::build(vec![0], &[]);
        assert_eq!(idx.num_keys(), 0);
        idx.insert(&row(&[5, 1]), 0);
        idx.insert(&row(&[5, 2]), 1);
        assert_eq!(idx.get(&[Value::int(5)]), &[0, 1]);
        assert_eq!(idx.num_keys(), 1);
    }
}
