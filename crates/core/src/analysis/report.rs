//! The `gbc analyze` report: one deterministic bundle of everything the
//! whole-program analyses (`typeinfer`, `reachability`, plan building)
//! concluded about a program, renderable as text or JSON.
//!
//! The JSON form is golden-tested by CI (`ci-analyze` sweeps every
//! shipped program against a committed report), so its field set and
//! ordering are part of the tool's compatibility surface — bump
//! [`ANALYSIS_SCHEMA_VERSION`] on any incompatible change.

use gbc_ast::{Program, Symbol};
use gbc_telemetry::json::Json;

use crate::analysis::reachability::{self, ReachInfo};
use crate::analysis::typeinfer::{self, TypeInfo};
use crate::analysis::ProgramClass;
use crate::exec::NextPlan;

/// Bumped whenever the shape of [`AnalyzeReport::to_json`]'s output
/// changes incompatibly; consumers should check it before reading
/// other fields.
pub const ANALYSIS_SCHEMA_VERSION: u64 = 1;

/// What the executor would specialize for one greedy (next-rule) plan.
#[derive(Clone, Debug)]
pub struct PlanFacts {
    /// Rule index in the original program.
    pub rule: usize,
    /// Head predicate.
    pub head: Symbol,
    /// Source predicate feeding `Q_r`.
    pub source: Symbol,
    /// Source column of the extremum cost, if any.
    pub cost_col: Option<usize>,
    /// The cost column is proved `int`, licensing the decode-free heap.
    pub int_cost: bool,
    /// The feed loop can skip per-row `Bindings` (the GBC032 shape).
    pub fast_feed: bool,
    /// `most` rule (descending retrieval).
    pub descending: bool,
    /// Chain mode (`I = J + 1`).
    pub chain: bool,
}

/// The full analysis bundle for one program.
#[derive(Clone, Debug)]
pub struct AnalyzeReport {
    /// Program-class summary string (see `ProgramClass::summary`).
    pub class: String,
    /// Column types, external predicates, conflicts.
    pub types: TypeInfo,
    /// Reachability, emptiness, dead rules, constant comparisons.
    pub reach: ReachInfo,
    /// Per-greedy-plan specializations (empty when no plan exists).
    pub plans: Vec<PlanFacts>,
}

/// Run both whole-program analyses and collect the plan facts.
pub fn analyze_program(
    program: &Program,
    class: &ProgramClass,
    plans: &[NextPlan],
) -> AnalyzeReport {
    let types = typeinfer::infer(program);
    let reach = reachability::analyze(program);
    let plans = plans
        .iter()
        .map(|p| {
            let cost_col = p.cost_col();
            PlanFacts {
                rule: p.rule_idx,
                head: p.head_pred(),
                source: p.source_pred(),
                cost_col,
                int_cost: cost_col.is_some_and(|c| types.col_is_int(p.source_pred(), c)),
                fast_feed: p.is_fast_feed(),
                descending: p.is_descending(),
                chain: p.chain,
            }
        })
        .collect();
    AnalyzeReport { class: class.summary(), types, reach, plans }
}

impl AnalyzeReport {
    /// Predicate names in deterministic (lexical) order.
    fn pred_names(&self) -> Vec<Symbol> {
        let mut names: Vec<Symbol> = self.types.cols.keys().copied().collect();
        names.sort_by_key(|s| s.to_string());
        names
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> Json {
        let preds = self
            .pred_names()
            .into_iter()
            .map(|name| {
                let cols = &self.types.cols[&name];
                Json::obj(vec![
                    ("name", Json::Str(name.to_string())),
                    ("cols", Json::Arr(cols.iter().map(|t| Json::Str(t.to_string())).collect())),
                    ("external", Json::Bool(self.types.external.contains(&name))),
                    ("reachable", Json::Bool(self.reach.reachable.contains(&name))),
                    ("empty", Json::Bool(self.reach.empty.contains(&name))),
                ])
            })
            .collect();
        let sym_arr = |syms: &[Symbol]| {
            let mut names: Vec<String> = syms.iter().map(|s| s.to_string()).collect();
            names.sort();
            Json::Arr(names.into_iter().map(Json::Str).collect())
        };
        let conflicts = self
            .types
            .conflicts
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("rule", Json::UInt(c.rule as u64)),
                    ("message", Json::Str(c.message.clone())),
                ])
            })
            .collect();
        let dead = self
            .reach
            .dead_rules
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("rule", Json::UInt(d.rule as u64)),
                    ("reason", Json::Str(d.reason.clone())),
                ])
            })
            .collect();
        let consts = self
            .reach
            .const_comparisons
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("rule", Json::UInt(c.rule as u64)),
                    ("lit", Json::UInt(c.lit as u64)),
                    ("value", Json::Bool(c.value)),
                ])
            })
            .collect();
        let plans = self
            .plans
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("rule", Json::UInt(p.rule as u64)),
                    ("head", Json::Str(p.head.to_string())),
                    ("source", Json::Str(p.source.to_string())),
                    ("cost_col", p.cost_col.map_or(Json::Null, |c| Json::UInt(c as u64))),
                    ("int_cost", Json::Bool(p.int_cost)),
                    ("fast_feed", Json::Bool(p.fast_feed)),
                    ("descending", Json::Bool(p.descending)),
                    ("chain", Json::Bool(p.chain)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema_version", Json::UInt(ANALYSIS_SCHEMA_VERSION)),
            ("class", Json::Str(self.class.clone())),
            ("predicates", Json::Arr(preds)),
            ("roots", sym_arr(&self.reach.roots)),
            ("unreachable", sym_arr(&self.reach.unreachable)),
            ("conflicts", Json::Arr(conflicts)),
            ("dead_rules", Json::Arr(dead)),
            ("const_comparisons", Json::Arr(consts)),
            ("plans", Json::Arr(plans)),
        ])
    }

    /// Human-readable multi-line rendering (the default `gbc analyze`
    /// output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("class: {}\n", self.class));
        out.push_str("predicates:\n");
        for name in self.pred_names() {
            let cols = &self.types.cols[&name];
            let tys: Vec<String> = cols.iter().map(|t| t.to_string()).collect();
            let mut marks = Vec::new();
            if self.types.external.contains(&name) {
                marks.push("external");
            }
            if !self.reach.reachable.contains(&name) {
                marks.push("unreachable");
            }
            if self.reach.empty.contains(&name) {
                marks.push("provably-empty");
            }
            let suffix =
                if marks.is_empty() { String::new() } else { format!("  [{}]", marks.join(", ")) };
            out.push_str(&format!("  {}/{}: {}{}\n", name, cols.len(), tys.join(", "), suffix));
        }
        if !self.types.conflicts.is_empty() {
            out.push_str("type conflicts:\n");
            for c in &self.types.conflicts {
                out.push_str(&format!("  rule {}: {}\n", c.rule, c.message));
            }
        }
        if !self.reach.dead_rules.is_empty() {
            out.push_str("dead rules:\n");
            for d in &self.reach.dead_rules {
                out.push_str(&format!("  rule {}: {}\n", d.rule, d.reason));
            }
        }
        if !self.reach.const_comparisons.is_empty() {
            out.push_str("constant comparisons:\n");
            for c in &self.reach.const_comparisons {
                out.push_str(&format!("  rule {} literal {}: always {}\n", c.rule, c.lit, c.value));
            }
        }
        if self.plans.is_empty() {
            out.push_str("greedy plans: none\n");
        } else {
            out.push_str("greedy plans:\n");
            for p in &self.plans {
                let cost = match p.cost_col {
                    Some(c) if p.int_cost => format!("cost col {c} (int fast path)"),
                    Some(c) => format!("cost col {c} (generic)"),
                    None => "no cost".to_owned(),
                };
                let mut marks = Vec::new();
                if p.fast_feed {
                    marks.push("fast-feed");
                }
                if p.descending {
                    marks.push("descending");
                }
                if p.chain {
                    marks.push("chain");
                }
                let suffix = if marks.is_empty() {
                    String::new()
                } else {
                    format!("  [{}]", marks.join(", "))
                };
                out.push_str(&format!(
                    "  rule {}: {} <- {}, {}{}\n",
                    p.rule, p.head, p.source, cost, suffix
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::classify;

    fn report(src: &str) -> AnalyzeReport {
        let program = gbc_parser::parse_program(src).unwrap();
        let compiled = crate::compile(program).unwrap();
        compiled.analyze_report()
    }

    #[test]
    fn report_covers_types_reachability_and_plans() {
        let r = report(
            "p(a, 1). p(b, 2).
             s(nil, 0).
             s(X, I) <- next(I), p(X, C), least(C, I).",
        );
        assert!(r.class.contains("StageStratified"));
        assert_eq!(r.plans.len(), 1);
        let plan = &r.plans[0];
        assert!(plan.int_cost, "cost column is all-int facts: {plan:?}");
        assert!(plan.fast_feed);
        assert!(!plan.descending);
        let json = r.to_json().to_string();
        for key in ["schema_version", "predicates", "dead_rules", "plans", "\"int_cost\":true"] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        let text = r.render();
        assert!(text.contains("int fast path"), "{text}");
        assert!(text.contains("fast-feed"), "{text}");
    }

    #[test]
    fn report_flags_dead_rules_and_unreachable_predicates() {
        let r = report(
            "src(1).
             out(X, I) <- next(I), src(X), least(X, I).
             ghost(X) <- phantom(X), missing(X).
             phantom(X) <- ghost(X).
             helper(X) <- src(X).
             aux(X) <- helper(X).",
        );
        assert!(!r.reach.dead_rules.is_empty(), "{:?}", r.reach.dead_rules);
        assert!(!r.reach.unreachable.is_empty());
        let json = r.to_json().to_string();
        assert!(json.contains("\"dead_rules\":[{"), "{json}");
    }

    #[test]
    fn json_is_deterministic() {
        let src = "p(a, 1). s(nil, 0). s(X, I) <- next(I), p(X, C), least(C, I).";
        let a = report(src).to_json().to_string();
        let b = report(src).to_json().to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn classify_is_reused_for_the_class_line() {
        let program = gbc_parser::parse_program("e(X) <- f(X).").unwrap();
        let analysis = classify(&program);
        let compiled = crate::compile(program).unwrap();
        assert_eq!(compiled.analyze_report().class, analysis.class.summary());
    }
}
