//! Dictionary id assignment is deterministic under the worker pool:
//! saturating the same program at any thread count stores byte-identical
//! id arenas and mints no ids beyond those the serial run assigned.
//!
//! Workers match in id space but never intern — head rows travel back to
//! the coordinator as values and are encoded during the deterministic
//! chunk-order merge (debug builds enforce this with a thread-local
//! guard). A single `#[test]` keeps the process-global dictionary
//! counters unpolluted by sibling test threads.

use gbc_ast::{Atom, Literal, Rule, Symbol, Term, Value};
use gbc_engine::seminaive::Seminaive;
use gbc_storage::dictionary::dict_stats;
use gbc_storage::Database;

/// Transitive closure plus a functor-head projection, so the merge path
/// interns nested `t(X, Y)` terms — the Huffman-style case.
fn rules() -> Vec<Rule> {
    vec![
        Rule::new(
            Atom::new("tc", vec![Term::var(0), Term::var(1)]),
            vec![Literal::pos("e", vec![Term::var(0), Term::var(1)])],
            vec!["X".into(), "Y".into()],
        ),
        Rule::new(
            Atom::new("tc", vec![Term::var(0), Term::var(2)]),
            vec![
                Literal::pos("tc", vec![Term::var(0), Term::var(1)]),
                Literal::pos("e", vec![Term::var(1), Term::var(2)]),
            ],
            vec!["X".into(), "Y".into(), "Z".into()],
        ),
        Rule::new(
            Atom::new(
                "pair",
                vec![Term::Func(Symbol::intern("t"), vec![Term::var(0), Term::var(1)])],
            ),
            vec![Literal::pos("tc", vec![Term::var(0), Term::var(1)])],
            vec!["X".into(), "Y".into()],
        ),
    ]
}

fn chain_db(n: i64) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert_values("e", vec![Value::int(i), Value::int(i + 1)]);
    }
    db
}

fn saturate(threads: usize) -> Database {
    let mut db = chain_db(300);
    let mut sn = Seminaive::new(rules());
    sn.set_threads(threads);
    sn.saturate(&mut db).unwrap();
    db
}

#[test]
fn id_assignment_is_identical_at_every_thread_count() {
    let serial = saturate(1);
    let after_serial = dict_stats();
    for threads in [2usize, 4, 8] {
        let db = saturate(threads);
        for pred in ["tc", "pair", "e"] {
            let p = Symbol::intern(pred);
            // RowsView equality compares raw dictionary ids cell by
            // cell: same facts, same insertion order, same ids.
            assert_eq!(
                db.relation(p).rows(),
                serial.relation(p).rows(),
                "{pred} arena diverged at {threads} threads"
            );
        }
        assert_eq!(
            dict_stats().dict_entries,
            after_serial.dict_entries,
            "a {threads}-thread run minted ids the serial run did not"
        );
    }
}
