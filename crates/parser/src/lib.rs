//! # gbc-parser
//!
//! Lexer and recursive-descent parser for the surface syntax used by the
//! programs of *Greedy by Choice* (PODS 1992).
//!
//! The dialect, by example (Prim's algorithm — Example 4 of the paper):
//!
//! ```text
//! prm(nil, a, 0, 0).
//! prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
//!                    least(C, I), choice(Y, X).
//! new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
//! ```
//!
//! * Variables start with an uppercase letter or `_`; a bare `_` is an
//!   anonymous variable, fresh at each occurrence.
//! * Constants are lowercase identifiers (interned symbols), integers,
//!   `nil`, or double-quoted strings.
//! * Rules use `<-` or `:-`; every clause ends with `.`.
//! * Negation is written `not p(…)`, `~p(…)` or `¬p(…)`.
//! * Meta-goals: `choice(L, R)`, `least(C[, G])`, `most(C[, G])`,
//!   `next(I)`, where `L`, `R`, `G` are a term or a parenthesised term
//!   tuple (possibly empty: `choice((), (X, Y))`).
//! * Arithmetic: `+ - * / mod`, `max(E, E)`, `min(E, E)`; comparisons
//!   `= != <> < <= > >=`.
//! * Comments: `%` to end of line.
//!
//! # Example
//!
//! ```
//! let program = gbc_parser::parse_program(
//!     "sp(nil, 0, 0). sp(X, C, I) <- next(I), p(X, C), least(C, I).",
//! ).unwrap();
//! assert_eq!(program.rules.len(), 2);
//! assert!(program.rules[1].has_next());
//! ```

mod lexer;
mod parser;

pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse_program, parse_rule, ParseError};

#[cfg(test)]
mod roundtrip_tests;
