//! Delta-driven saturation of a rule set (seminaive evaluation).
//!
//! A [`Seminaive`] driver owns a rule set and per-predicate high-water
//! marks. Each call to [`Seminaive::saturate`] runs rounds until no new
//! facts appear; within a round, every non-extrema rule is evaluated
//! once per positive body occurrence, with that occurrence *focused* on
//! the rows inserted since the mark. Rules with `least`/`most` goals are
//! re-evaluated in full whenever a body predicate has grown (the filter
//! needs the complete match set), which is the behaviour the paper's
//! cost analysis assumes for flat rules.
//!
//! The driver persists across calls, so the paper's `Q^∞(γ(S))`
//! alternation (Section 2) pays only for work caused by the facts the
//! latest γ step introduced.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gbc_ast::{Literal, Rule, Symbol};
use gbc_storage::{Database, FxHashMap, Row};
use gbc_telemetry::{Metrics, RuleProfiler, TraceEvent, TraceSink};

use crate::bindings::Bindings;
use crate::error::EngineError;
use crate::eval::{instantiate_head, parent_rows, Focus};
use crate::extrema::{
    eval_rule_with_extrema_plan, eval_rule_with_extrema_plan_pooled,
    eval_rule_with_extrema_plan_traced, eval_rule_with_extrema_plan_traced_pooled,
};
use crate::plan::{execute_base_chunked, for_each_match_plan, PlanCache, RulePlan};
use crate::pool::{FanoutObs, PoolStats, WorkerPool};

/// Rows joined over per derived head row — recorded for provenance.
type ParentSets = Vec<Vec<(Symbol, Row)>>;

/// Persistent seminaive driver. See the module docs.
#[derive(Clone)]
pub struct Seminaive {
    rules: Vec<Rule>,
    /// Original-program rule index per driven rule — the id reported
    /// to provenance, the profiler and `rule_fired` trace events.
    /// Defaults to the identity (driven rules ARE the program).
    rule_ids: Vec<usize>,
    /// Compiled join plans, one slot per rule, filled on first use and
    /// reused for every subsequent round and saturation call.
    plans: PlanCache,
    /// The distinct predicates appearing positively in rule bodies,
    /// computed once — each round snapshots exactly these counts.
    preds: Vec<Symbol>,
    /// Per-predicate count of rows already used as deltas.
    marks: FxHashMap<Symbol, usize>,
    /// Rules already given their initial full evaluation.
    evaluated_once: Vec<bool>,
    /// Per-round delta sizes report here when attached.
    metrics: Option<Arc<Metrics>>,
    /// `rule_fired` events go here when attached.
    trace: Option<Arc<dyn TraceSink>>,
    /// Per-rule timing reports here when attached.
    profiler: Option<Arc<RuleProfiler>>,
    /// Worker pool for the parallel evaluation paths. Serial by
    /// default; results are byte-identical at any thread count (see
    /// DESIGN.md §9).
    pool: WorkerPool,
    /// Pool-level occupancy accumulator (busy/idle/steal lanes, chunk
    /// sizes, merge time). Purely observational — never consulted by
    /// the evaluation itself.
    pool_stats: Option<Arc<PoolStats>>,
}

impl std::fmt::Debug for Seminaive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Seminaive")
            .field("rules", &self.rules.len())
            .field("marks", &self.marks)
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

impl Seminaive {
    /// Build a driver for `rules`. Rules may contain negation,
    /// comparisons and extrema; `choice`/`next` goals are rejected at
    /// evaluation time by the matcher.
    pub fn new(rules: Vec<Rule>) -> Seminaive {
        let n = rules.len();
        let mut preds = Vec::new();
        for rule in &rules {
            for a in rule.positive_atoms() {
                if !preds.contains(&a.pred) {
                    preds.push(a.pred);
                }
            }
        }
        Seminaive {
            rules,
            rule_ids: (0..n).collect(),
            plans: PlanCache::new(n),
            preds,
            marks: FxHashMap::default(),
            evaluated_once: vec![false; n],
            metrics: None,
            trace: None,
            profiler: None,
            pool: WorkerPool::serial(),
            pool_stats: None,
        }
    }

    /// Attach a counter registry: each saturation round reports its
    /// delta size (`record_delta`), feeding `tuples_derived`,
    /// `flat_rounds` and the optional per-round history.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// Override the original-program rule index per driven rule. Owners
    /// driving a *subset* of a program (the choice fixpoint's flat
    /// rules, the greedy executor) call this so observability reports
    /// cite program positions, not subset positions.
    pub fn set_rule_ids(&mut self, ids: Vec<usize>) {
        assert_eq!(ids.len(), self.rules.len(), "one id per driven rule");
        self.rule_ids = ids;
    }

    /// Attach (or detach) a trace sink for `rule_fired` events.
    pub fn set_trace(&mut self, trace: Option<Arc<dyn TraceSink>>) {
        self.trace = trace;
    }

    /// Attach (or detach) a per-rule profiler.
    pub fn set_profiler(&mut self, profiler: Option<Arc<RuleProfiler>>) {
        self.profiler = profiler;
    }

    /// Set the worker-thread count for flat-rule evaluation. `1` (the
    /// default) keeps every path on the exact serial code; higher
    /// counts fan big rounds out over [`crate::pool`], producing
    /// byte-identical relation contents and counters.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = WorkerPool::new(threads);
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Attach a pool-occupancy accumulator. Parallel fan-outs then
    /// charge per-lane busy time, chunk sizes and merge time to it.
    pub fn set_pool_stats(&mut self, stats: Option<Arc<PoolStats>>) {
        self.pool_stats = stats;
    }

    /// The rules driven by this instance.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Run rounds until fixpoint. Returns the number of new facts.
    pub fn saturate(&mut self, db: &mut Database) -> Result<u64, EngineError> {
        let Seminaive {
            rules,
            rule_ids,
            plans,
            preds,
            marks,
            evaluated_once,
            metrics,
            trace,
            profiler,
            pool,
            pool_stats,
        } = self;
        let pool = *pool;
        let parallel = pool.is_parallel();
        // Owned handle: recording happens while `db` is mutably
        // borrowed by the insert loop.
        let prov = db.provenance().cloned();
        let want_prov = prov.is_some();
        let mut total: u64 = 0;
        loop {
            // The round runs on a *chained* clock: one `Instant::now`
            // per boundary, with every interval charged either to the
            // rule that just evaluated or to the profiler's overhead
            // bucket (round snapshots, mark advances). Chaining — as
            // opposed to independent start/stop pairs per rule — leaves
            // no gap between intervals, so the clock reads themselves
            // cannot leak unattributed time.
            let mut t_prev = profiler.as_ref().and_then(|p| p.start());
            let start_lens: Vec<(Symbol, usize)> =
                preds.iter().map(|&p| (p, db.count(p))).collect();
            if let (Some(p), Some(t0)) = (profiler.as_ref(), t_prev) {
                let t = Instant::now();
                p.add_overhead(t - t0);
                t_prev = Some(t);
            }

            let mut new_facts: u64 = 0;
            for (ri, rule) in rules.iter().enumerate() {
                let head = rule.head.pred;
                let rule_id = rule_ids[ri];
                let cached = plans.is_cached(ri);
                let plan = plans.get_or_compile(ri, rule, metrics.as_deref())?;
                if cached {
                    if let Some(p) = profiler {
                        p.record_plan_hit(rule_id);
                    }
                }
                // `parents` stays index-aligned with `derived`; it is
                // only filled when an arena is attached.
                let mut parents: ParentSets = Vec::new();
                // Fan-out observers for this rule: profiler lanes, pool
                // occupancy, and worker_chunk trace events tagged with
                // the rule id.
                let obs = FanoutObs {
                    profiler: profiler.as_deref(),
                    stats: pool_stats.as_deref(),
                    trace: trace.as_deref().map(|t| (t, rule_id)),
                };
                let derived: Vec<Row> = if !evaluated_once[ri] {
                    evaluated_once[ri] = true;
                    if rule.has_extrema() {
                        let (rows, frames) =
                            eval_extrema_full(db, rule, &plan, pool, obs, want_prov)?;
                        if let Some(frames) = frames {
                            parents = frames.iter().map(|b| parent_rows(rule, b)).collect();
                        }
                        rows
                    } else {
                        eval_full(db, rule, &plan, pool, obs, want_prov, &mut parents)?
                    }
                } else if rule.has_extrema() {
                    let grown = rule
                        .positive_atoms()
                        .any(|a| marks.get(&a.pred).copied().unwrap_or(0) < db.count(a.pred));
                    if !grown {
                        if let (Some(p), Some(t0)) = (profiler.as_ref(), t_prev) {
                            let t = Instant::now();
                            p.record(rule_id, 0, 0, t - t0);
                            t_prev = Some(t);
                        }
                        continue;
                    }
                    let (rows, frames) = eval_extrema_full(db, rule, &plan, pool, obs, want_prov)?;
                    if let Some(frames) = frames {
                        parents = frames.iter().map(|b| parent_rows(rule, b)).collect();
                    }
                    rows
                } else {
                    let mut derived = Vec::new();
                    for (li, lit) in rule.body.iter().enumerate() {
                        let Literal::Pos(a) = lit else { continue };
                        let from = marks.get(&a.pred).copied().unwrap_or(0);
                        if from >= db.count(a.pred) {
                            continue;
                        }
                        // The delta rows are borrowed in place from the
                        // relation's arena — no per-round copy.
                        let rows = db.relation(a.pred).since(from);
                        let ranges = pool.chunk_ranges(rows.len());
                        if ranges.len() > 1 {
                            // Fan out: each worker runs the same
                            // focused variant over a contiguous chunk
                            // of the delta with its own scratch frame,
                            // trail and buffers, reading the arena and
                            // indices immutably. Merging the per-chunk
                            // buffers in chunk order reproduces the
                            // serial enumeration exactly.
                            let dbr: &Database = db;
                            let prof = profiler.as_deref();
                            let stats = pool_stats.as_deref();
                            let tr = trace.as_deref();
                            if let Some(st) = stats {
                                for &(lo, hi) in &ranges {
                                    st.record_chunk((hi - lo) as u64);
                                }
                            }
                            let results = pool.run_stats(ranges.len(), stats, |ci, worker| {
                                // Saturation workers read the dictionary
                                // lock-free but must never grow it: head
                                // rows stay as values and the coordinator
                                // encodes them at merge time, keeping id
                                // assignment deterministic across thread
                                // counts (debug-only guard).
                                gbc_storage::dictionary::forbid_intern_on_this_thread(true);
                                let t0 = prof.and_then(RuleProfiler::lane_start);
                                let t_chunk = tr.map(|_| Instant::now());
                                let (lo, hi) = ranges[ci];
                                let mut out: Vec<Row> = Vec::new();
                                let mut par: ParentSets = Vec::new();
                                let res = for_each_match_plan(
                                    dbr,
                                    None,
                                    rule,
                                    &plan,
                                    Some(Focus { literal: li, rows: rows.slice(lo, hi) }),
                                    &mut |b| {
                                        out.push(instantiate_head(rule, b)?);
                                        if want_prov {
                                            par.push(parent_rows(rule, b));
                                        }
                                        Ok(true)
                                    },
                                );
                                if let (Some(p), Some(t0)) = (prof, t0) {
                                    p.record_lane(worker, t0.elapsed());
                                }
                                if let (Some(t), Some(t0)) = (tr, t_chunk) {
                                    t.event(&TraceEvent::WorkerChunk {
                                        worker,
                                        rule: rule_id,
                                        items: (hi - lo) as u64,
                                        dur_us: t0.elapsed().as_micros() as u64,
                                    });
                                }
                                res.map(|()| (out, par))
                            });
                            // Errors surface from the earliest chunk —
                            // the one a serial run would fail in first.
                            let t_merge = stats.map(|_| Instant::now());
                            for r in results {
                                let (out, par) = r?;
                                derived.extend(out);
                                parents.extend(par);
                            }
                            if let (Some(st), Some(t0)) = (stats, t_merge) {
                                st.record_merge(t0.elapsed().as_nanos() as u64);
                            }
                        } else {
                            for_each_match_plan(
                                db,
                                None,
                                rule,
                                &plan,
                                Some(Focus { literal: li, rows }),
                                &mut |b| {
                                    derived.push(instantiate_head(rule, b)?);
                                    if want_prov {
                                        parents.push(parent_rows(rule, b));
                                    }
                                    Ok(true)
                                },
                            )?;
                        }
                    }
                    derived
                };
                // Parallel rounds split the rule's chained interval at
                // this boundary: everything up to here (dispatch, join,
                // barrier) is charged to the rule; the merge/insert
                // sweep below goes to the profiler's merge bucket.
                // Serial rounds keep the single-interval accounting.
                if parallel {
                    if let (Some(p), Some(t0)) = (profiler.as_ref(), t_prev) {
                        let t = Instant::now();
                        p.record(rule_id, 0, 0, t - t0);
                        t_prev = Some(t);
                    }
                }
                let mut inserted: u64 = 0;
                if let Some(arena) = &prov {
                    for (i, row) in derived.into_iter().enumerate() {
                        if db.insert(head, row.clone()) {
                            inserted += 1;
                            let par = parents.get(i).map_or(&[][..], Vec::as_slice);
                            arena.record_derivation(head, &row, rule_id, par);
                        }
                    }
                } else {
                    for row in derived {
                        if db.insert(head, row) {
                            inserted += 1;
                        }
                    }
                }
                new_facts += inserted;
                if inserted > 0 {
                    if let Some(t) = trace {
                        t.event(&TraceEvent::RuleFired {
                            rule: rule_id,
                            pred: head.to_string(),
                            new_facts: inserted,
                        });
                    }
                }
                if let (Some(p), Some(t0)) = (profiler.as_ref(), t_prev) {
                    let t = Instant::now();
                    if parallel {
                        p.add_merge(t - t0);
                        p.record(rule_id, 1, inserted, Duration::ZERO);
                    } else {
                        p.record(rule_id, 1, inserted, t - t0);
                    }
                    t_prev = Some(t);
                }
            }

            // Advance marks to the round-start snapshot.
            for (pred, len) in start_lens {
                let m = marks.entry(pred).or_insert(0);
                *m = (*m).max(len);
            }

            if let Some(m) = metrics {
                m.record_delta(new_facts);
            }
            if let (Some(p), Some(t0)) = (profiler.as_ref(), t_prev) {
                p.add_overhead(t0.elapsed());
            }
            total += new_facts;
            if new_facts == 0 {
                return Ok(total);
            }
        }
    }
}

/// Full (unfocused) evaluation of an extrema rule, fanning the match
/// collection out over `pool` when it is parallel. Returns the
/// surviving binding frames too when `want_frames` (the provenance
/// path needs them to reconstruct parent rows).
fn eval_extrema_full(
    db: &Database,
    rule: &Rule,
    plan: &RulePlan,
    pool: WorkerPool,
    obs: FanoutObs<'_>,
    want_frames: bool,
) -> Result<(Vec<Row>, Option<Vec<Bindings>>), EngineError> {
    if want_frames {
        let (rows, frames) = if pool.is_parallel() {
            eval_rule_with_extrema_plan_traced_pooled(db, rule, plan, &pool, obs)?
        } else {
            eval_rule_with_extrema_plan_traced(db, rule, plan)?
        };
        Ok((rows, Some(frames)))
    } else if pool.is_parallel() {
        Ok((eval_rule_with_extrema_plan_pooled(db, rule, plan, &pool, obs)?, None))
    } else {
        Ok((eval_rule_with_extrema_plan(db, rule, plan)?, None))
    }
}

/// Full (unfocused) first evaluation of a plain rule: derived rows plus
/// — when `want_prov` — the parent rows per derivation appended to
/// `parents`. Parallel pools fan the base plan's first scan out over
/// chunks ([`execute_base_chunked`]); the serial pool, and plans with
/// no scan to split, take the exact serial path.
fn eval_full(
    db: &Database,
    rule: &Rule,
    plan: &RulePlan,
    pool: WorkerPool,
    obs: FanoutObs<'_>,
    want_prov: bool,
    parents: &mut ParentSets,
) -> Result<Vec<Row>, EngineError> {
    if pool.is_parallel() {
        let chunked = execute_base_chunked::<(Vec<Row>, ParentSets)>(
            db,
            rule,
            plan,
            &pool,
            obs,
            &|b, acc| {
                acc.0.push(instantiate_head(rule, b)?);
                if want_prov {
                    acc.1.push(parent_rows(rule, b));
                }
                Ok(())
            },
        )?;
        if let Some(chunks) = chunked {
            let mut derived = Vec::new();
            for (rows, par) in chunks {
                derived.extend(rows);
                parents.extend(par);
            }
            return Ok(derived);
        }
    }
    let mut derived = Vec::new();
    for_each_match_plan(db, None, rule, plan, None, &mut |b| {
        derived.push(instantiate_head(rule, b)?);
        if want_prov {
            parents.push(parent_rows(rule, b));
        }
        Ok(true)
    })?;
    Ok(derived)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::{Atom, Term, Value};

    fn tc_rules() -> Vec<Rule> {
        vec![
            // tc(X, Y) <- e(X, Y).
            Rule::new(
                Atom::new("tc", vec![Term::var(0), Term::var(1)]),
                vec![Literal::pos("e", vec![Term::var(0), Term::var(1)])],
                vec!["X".into(), "Y".into()],
            ),
            // tc(X, Z) <- tc(X, Y), e(Y, Z).
            Rule::new(
                Atom::new("tc", vec![Term::var(0), Term::var(2)]),
                vec![
                    Literal::pos("tc", vec![Term::var(0), Term::var(1)]),
                    Literal::pos("e", vec![Term::var(1), Term::var(2)]),
                ],
                vec!["X".into(), "Y".into(), "Z".into()],
            ),
        ]
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_values("e", vec![Value::int(i), Value::int(i + 1)]);
        }
        db
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let mut db = chain_db(5);
        let mut sn = Seminaive::new(tc_rules());
        let new = sn.saturate(&mut db).unwrap();
        // Chain of 6 nodes: 5+4+3+2+1 = 15 tc facts.
        assert_eq!(new, 15);
        assert_eq!(db.count(Symbol::intern("tc")), 15);
    }

    #[test]
    fn saturation_is_idempotent() {
        let mut db = chain_db(4);
        let mut sn = Seminaive::new(tc_rules());
        sn.saturate(&mut db).unwrap();
        assert_eq!(sn.saturate(&mut db).unwrap(), 0);
    }

    #[test]
    fn incremental_facts_trigger_incremental_work() {
        let mut db = chain_db(3);
        let mut sn = Seminaive::new(tc_rules());
        sn.saturate(&mut db).unwrap();
        // Add a new edge extending the chain; only the new closures appear.
        db.insert_values("e", vec![Value::int(3), Value::int(4)]);
        let added = sn.saturate(&mut db).unwrap();
        // New tc facts: (0,4), (1,4), (2,4), (3,4).
        assert_eq!(added, 4);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut db = Database::new();
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            db.insert_values("e", vec![Value::int(a), Value::int(b)]);
        }
        let mut sn = Seminaive::new(tc_rules());
        sn.saturate(&mut db).unwrap();
        assert_eq!(db.count(Symbol::intern("tc")), 9);
    }

    #[test]
    fn parallel_saturation_matches_serial_arena_order() {
        // A chain long enough that both the first full evaluation and
        // the per-round deltas cross the chunking threshold. The
        // determinism contract is *insertion order*, not just set
        // equality — later `since(mark)` slices and downstream choice
        // heaps depend on it — so compare the arenas directly.
        let n = 300;
        let tc = Symbol::intern("tc");
        let (serial_total, serial_db) = {
            let mut db = chain_db(n);
            let total = Seminaive::new(tc_rules()).saturate(&mut db).unwrap();
            (total, db)
        };
        for threads in [2usize, 4, 8] {
            let mut db = chain_db(n);
            let mut sn = Seminaive::new(tc_rules());
            sn.set_threads(threads);
            assert_eq!(sn.threads(), threads);
            let total = sn.saturate(&mut db).unwrap();
            assert_eq!(total, serial_total, "threads {threads}");
            assert_eq!(db.relation(tc).rows(), serial_db.relation(tc).rows(), "threads {threads}");
        }
    }

    #[test]
    fn extrema_rule_reevaluates_when_inputs_grow() {
        // cheapest(X, C) <- arc(X, C), least(C, X).
        let rules = vec![Rule::new(
            Atom::new("cheapest", vec![Term::var(0), Term::var(1)]),
            vec![
                Literal::pos("arc", vec![Term::var(0), Term::var(1)]),
                Literal::Least { cost: Term::var(1), group: vec![Term::var(0)] },
            ],
            vec!["X".into(), "C".into()],
        )];
        let mut db = Database::new();
        db.insert_values("arc", vec![Value::sym("a"), Value::int(5)]);
        let mut sn = Seminaive::new(rules);
        sn.saturate(&mut db).unwrap();
        assert!(db
            .contains(Symbol::intern("cheapest"), &Row::new(vec![Value::sym("a"), Value::int(5)])));
        // A cheaper arc arrives: the new minimum is also derived
        // (inflationary semantics — old facts persist, as the paper's
        // fixpoint prescribes).
        db.insert_values("arc", vec![Value::sym("a"), Value::int(2)]);
        sn.saturate(&mut db).unwrap();
        assert!(db
            .contains(Symbol::intern("cheapest"), &Row::new(vec![Value::sym("a"), Value::int(2)])));
    }
}
