//! Parallel saturation equivalence sweep — the determinism contract of
//! DESIGN.md §9, checked end to end.
//!
//! Every shipped program runs at 1, 2, 4 and 8 worker threads and must
//! produce, at every count, exactly what the serial engine produces:
//! the same canonical relation dump, the same semantic counters
//! (including the per-round `delta_history` — order matters, not just
//! totals), and the same stats JSON once timing floats are masked.
//! Thread count may only change *where* flat-rule joins execute, never
//! what they derive or in what order the results are merged.
//!
//! The shipped `.dl` programs are small (their saturation rounds mostly
//! stay under the pool's chunking threshold), so a generated Prim
//! workload big enough to genuinely fan out across workers is swept
//! too.

use gbc_core::GreedyConfig;
use gbc_greedy::{prim, workload};
use gbc_storage::Database;
use gbc_telemetry::{Json, Snapshot, Telemetry};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The ci.sh observability groupings: every shipped program with the
/// EDB file(s) it runs against.
const PROGRAMS: [&[&str]; 9] = [
    &["programs/prim.dl", "programs/graph_small.dl"],
    &["programs/spanning.dl", "programs/graph_small.dl"],
    &["programs/kruskal.dl", "programs/graph_small.dl"],
    &["programs/sort.dl"],
    &["programs/matching.dl"],
    &["programs/huffman.dl"],
    &["programs/scheduling.dl"],
    &["programs/tsp.dl"],
    &["programs/assignment.dl"],
];

/// Everything a run produced that must be invariant under the thread
/// count: relation contents, semantic counters (with delta history),
/// and the stats JSON with timing floats masked out.
#[derive(PartialEq)]
struct RunFingerprint {
    canonical: String,
    snapshot: Snapshot,
    stats_json: String,
}

impl std::fmt::Debug for RunFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunFingerprint")
            .field("canonical", &self.canonical)
            .field("snapshot", &self.snapshot)
            .field("stats_json", &self.stats_json)
            .finish()
    }
}

/// Replace every float in a stats JSON tree with null. Counters are
/// integers; the floats are exactly the wall-clock fields (phase and
/// profile seconds), which are the one thing a thread count is allowed
/// to change.
fn mask_timings(json: Json) -> Json {
    match json {
        Json::Float(_) => Json::Null,
        Json::Arr(items) => Json::Arr(items.into_iter().map(mask_timings).collect()),
        Json::Obj(fields) => {
            Json::Obj(fields.into_iter().map(|(k, v)| (k, mask_timings(v))).collect())
        }
        other => other,
    }
}

fn fingerprint(db: &Database, tel: &Telemetry) -> RunFingerprint {
    RunFingerprint {
        canonical: db.canonical_form(),
        snapshot: tel.snapshot(),
        stats_json: mask_timings(tel.to_json()).pretty(),
    }
}

/// Run one program group at `threads` workers, mirroring `gbc run`:
/// the Section 6 greedy executor when the program compiles to a greedy
/// plan, the generic fixpoint (always serial — choice resolution is
/// inherently sequential) otherwise. `gamma_batch` toggles the PR 10
/// batched feed kernel (`GBC_NO_GAMMA_BATCH=1` territory): the counter
/// it moves, `heap_batch_pushes`, is itself thread-count invariant, so
/// each batch setting is swept for full byte-identity — the cross-batch
/// comparison (counter zeroed) lives in `analysis_equivalence.rs`.
fn run_group(files: &[&str], threads: usize, gamma_batch: bool) -> RunFingerprint {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut source = String::new();
    for f in files {
        let path = format!("{root}/{f}");
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        source.push_str(&text);
        source.push('\n');
    }
    let program = gbc_parser::parse_program(&source).expect("shipped program parses");
    let compiled = gbc_core::compile(program).expect("shipped program compiles");
    let edb = Database::new();
    let tel = Telemetry::enabled();
    if compiled.has_greedy_plan() {
        let config = GreedyConfig { gamma_batch, ..GreedyConfig::with_threads(threads) };
        let run = compiled.run_greedy_telemetry(&edb, config, &tel).expect("greedy run");
        fingerprint(&run.db, &tel)
    } else {
        let mut fixpoint =
            gbc_engine::ChoiceFixpoint::new(compiled.expanded(), &edb).expect("fixpoint");
        fixpoint.set_telemetry(tel.clone());
        fixpoint.run(&mut gbc_engine::DeterministicFirst).expect("fixpoint run");
        fingerprint(&fixpoint.into_database(), &tel)
    }
}

#[test]
fn shipped_programs_are_thread_count_invariant() {
    for files in PROGRAMS {
        for gamma_batch in [true, false] {
            let serial = run_group(files, 1, gamma_batch);
            assert!(!serial.canonical.is_empty(), "{files:?} produced no facts");
            for threads in &THREAD_COUNTS[1..] {
                let parallel = run_group(files, *threads, gamma_batch);
                assert_eq!(
                    serial, parallel,
                    "{files:?} (batch={gamma_batch}) diverged from the serial run at \
                     {threads} threads"
                );
            }
        }
    }
}

/// A Prim instance large enough that saturation rounds cross the pool's
/// chunking threshold and genuinely execute on worker threads — the
/// shipped graph_small.dl never leaves the inline path.
#[test]
fn large_prim_fans_out_identically() {
    let g = workload::connected_graph(512, 3 * 512, 1_000_000, 42);
    let (compiled, edb) = prim::prepared(&g, 0);
    for gamma_batch in [true, false] {
        let mut serial = None;
        for threads in THREAD_COUNTS {
            let tel = Telemetry::enabled();
            let config = GreedyConfig { gamma_batch, ..GreedyConfig::with_threads(threads) };
            let run = compiled.run_greedy_telemetry(&edb, config, &tel).expect("prim run");
            assert_eq!(prim::decode(&run).len(), 511, "spanning tree edges");
            let fp = fingerprint(&run.db, &tel);
            match &serial {
                None => serial = Some(fp),
                Some(s) => assert_eq!(
                    s, &fp,
                    "prim n=512 (batch={gamma_batch}) diverged at {threads} threads"
                ),
            }
        }
    }
}
