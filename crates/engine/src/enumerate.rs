//! Exhaustive enumeration of choice models.
//!
//! Lemma 1/2 of the paper state that the Choice Fixpoint is
//! (non-deterministically) *complete*: every stable model of a choice
//! program is produced by some instantiation of the one-consequence
//! operator γ. This module realises that completeness constructively by
//! branching on **every** γ candidate at every step — a DFS over the
//! tree of fixpoint runs — and collecting the distinct terminal
//! databases. Exponential in general, it is meant for the small
//! instances used to validate semantics (experiment V2).

use std::collections::BTreeSet;

use gbc_ast::Program;
use gbc_storage::Database;

use crate::choice::{ChoiceFixpoint, ChoiceFixpointConfig};
use crate::error::EngineError;

/// Budget for the enumeration tree.
#[derive(Clone, Copy, Debug)]
pub struct EnumerateConfig {
    /// Stop (with an error) after visiting this many DFS nodes.
    pub max_nodes: u64,
    /// Stop (with an error) after collecting this many distinct models.
    pub max_models: usize,
}

impl Default for EnumerateConfig {
    fn default() -> Self {
        EnumerateConfig { max_nodes: 100_000, max_models: 10_000 }
    }
}

/// All choice models of `program` over `edb`, as canonically rendered
/// databases in sorted order.
pub fn all_choice_models(program: &Program, edb: &Database) -> Result<Vec<Database>, EngineError> {
    all_choice_models_with(program, edb, EnumerateConfig::default())
}

/// [`all_choice_models`] with explicit budgets.
pub fn all_choice_models_with(
    program: &Program,
    edb: &Database,
    config: EnumerateConfig,
) -> Result<Vec<Database>, EngineError> {
    let root = ChoiceFixpoint::with_config(
        program,
        edb,
        ChoiceFixpointConfig { max_gamma_steps: config.max_nodes },
    )?;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut models: Vec<Database> = Vec::new();
    let mut nodes: u64 = 0;
    dfs(root, &mut seen, &mut models, &mut nodes, &config)?;
    // Deterministic order: sort by canonical form.
    models.sort_by_key(Database::canonical_form);
    Ok(models)
}

fn dfs(
    mut state: ChoiceFixpoint,
    seen: &mut BTreeSet<String>,
    models: &mut Vec<Database>,
    nodes: &mut u64,
    config: &EnumerateConfig,
) -> Result<(), EngineError> {
    *nodes += 1;
    if *nodes > config.max_nodes {
        return Err(EngineError::StepLimit { steps: *nodes });
    }
    state.saturate_flat()?;
    let cands = state.candidates()?;
    if cands.is_empty() {
        let canon = state.database().canonical_form();
        if seen.insert(canon) {
            if models.len() >= config.max_models {
                return Err(EngineError::StepLimit { steps: *nodes });
            }
            models.push(state.into_database());
        }
        return Ok(());
    }
    for cand in &cands {
        let mut branch = state.clone();
        branch.commit(cand);
        dfs(branch, seen, models, nodes, config)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::{Atom, Literal, Rule, Symbol, Term, Value};

    /// Example 1 of the paper with the grade column, as printed there.
    fn example1_with_grades() -> (Program, Database) {
        let rule = Rule::new(
            Atom::new("a_st", vec![Term::var(0), Term::var(1), Term::var(2)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::Choice { left: vec![Term::var(1)], right: vec![Term::var(0)] },
                Literal::Choice { left: vec![Term::var(0)], right: vec![Term::var(1)] },
            ],
            vec!["St".into(), "Crs".into(), "G".into()],
        );
        let mut edb = Database::new();
        for (s, c, g) in
            [("andy", "engl", 4), ("mark", "engl", 2), ("ann", "math", 3), ("mark", "math", 2)]
        {
            edb.insert_values("takes", vec![Value::sym(s), Value::sym(c), Value::int(g)]);
        }
        (Program::from_rules(vec![rule]), edb)
    }

    #[test]
    fn example_1_has_exactly_the_three_paper_models() {
        let (p, edb) = example1_with_grades();
        let models = all_choice_models(&p, &edb).unwrap();
        assert_eq!(models.len(), 3, "the paper lists M1, M2, M3");
        let a_st = Symbol::intern("a_st");
        let mut signatures: Vec<Vec<String>> = models
            .iter()
            .map(|m| {
                let mut v: Vec<String> =
                    m.facts_of(a_st).iter().map(|r| format!("{}-{}", r[0], r[1])).collect();
                v.sort();
                v
            })
            .collect();
        signatures.sort();
        assert_eq!(
            signatures,
            vec![
                vec!["andy-engl".to_string(), "ann-math".to_string()],
                vec!["andy-engl".to_string(), "mark-math".to_string()],
                vec!["ann-math".to_string(), "mark-engl".to_string()],
            ]
        );
    }

    #[test]
    fn bi_st_c_has_exactly_the_two_paper_models() {
        // bi_st_c(St, Crs, G) <- takes(St, Crs, G), G > 1, least(G),
        //                        choice(St, Crs), choice(Crs, St).
        let rule = Rule::new(
            Atom::new("bi_st_c", vec![Term::var(0), Term::var(1), Term::var(2)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::cmp(
                    gbc_ast::CmpOp::Gt,
                    gbc_ast::term::Expr::var(2),
                    gbc_ast::term::Expr::int(1),
                ),
                Literal::Least { cost: Term::var(2), group: vec![] },
                Literal::Choice { left: vec![Term::var(0)], right: vec![Term::var(1)] },
                Literal::Choice { left: vec![Term::var(1)], right: vec![Term::var(0)] },
            ],
            vec!["St".into(), "Crs".into(), "G".into()],
        );
        let (_, edb) = example1_with_grades();
        let p = Program::from_rules(vec![rule]);
        let models = all_choice_models(&p, &edb).unwrap();
        let bi = Symbol::intern("bi_st_c");
        let mut sigs: Vec<String> = models
            .iter()
            .map(|m| {
                m.facts_of(bi)
                    .iter()
                    .map(|r| format!("{}-{}-{}", r[0], r[1], r[2]))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        sigs.sort();
        sigs.dedup();
        // The paper's M1 = {bi_st_c(mark, engl, 2)}, M2 = {bi_st_c(mark, math, 2)}.
        assert_eq!(sigs, vec!["mark-engl-2".to_string(), "mark-math-2".to_string()]);
    }

    #[test]
    fn program_without_choice_has_one_model() {
        let mut p = Program::new();
        p.push_fact("e", vec![Value::int(1)]);
        let models = all_choice_models(&p, &Database::new()).unwrap();
        assert_eq!(models.len(), 1);
    }

    #[test]
    fn node_budget_is_enforced() {
        let (p, edb) = example1_with_grades();
        let cfg = EnumerateConfig { max_nodes: 2, max_models: 10 };
        assert!(matches!(
            all_choice_models_with(&p, &edb, cfg),
            Err(EngineError::StepLimit { .. })
        ));
    }
}
