//! Classical Huffman coding (Example 6's comparator): repeatedly merge
//! the two cheapest trees with a binary heap. `O(k log k)` for `k`
//! symbols.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A Huffman tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tree {
    /// A symbol with its weight.
    Leaf { symbol: u32, weight: i64 },
    /// An internal node; `weight` = sum of the children's weights.
    Node { weight: i64, left: Box<Tree>, right: Box<Tree> },
}

impl Tree {
    /// The tree's total weight.
    pub fn weight(&self) -> i64 {
        match self {
            Tree::Leaf { weight, .. } | Tree::Node { weight, .. } => *weight,
        }
    }

    /// Code lengths per symbol: `(symbol, depth)`.
    pub fn code_lengths(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        self.walk(0, &mut out);
        out.sort_unstable();
        out
    }

    fn walk(&self, depth: u32, out: &mut Vec<(u32, u32)>) {
        match self {
            Tree::Leaf { symbol, .. } => out.push((*symbol, depth)),
            Tree::Node { left, right, .. } => {
                left.walk(depth + 1, out);
                right.walk(depth + 1, out);
            }
        }
    }
}

/// Build the Huffman tree for `weights[i]` = weight of symbol `i`.
/// Returns `None` for an empty alphabet. Ties break deterministically
/// on (weight, insertion order), so repeated runs agree.
pub fn huffman_tree(weights: &[i64]) -> Option<Tree> {
    // Heap entries: Reverse((weight, tiebreak)); payloads in a slab.
    let mut slab: Vec<Option<Tree>> = Vec::with_capacity(weights.len() * 2);
    let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
    for (i, &w) in weights.iter().enumerate() {
        slab.push(Some(Tree::Leaf { symbol: i as u32, weight: w }));
        heap.push(Reverse((w, i)));
    }
    if slab.is_empty() {
        return None;
    }
    while heap.len() > 1 {
        let Reverse((wa, ia)) = heap.pop().expect("len > 1");
        let Reverse((wb, ib)) = heap.pop().expect("len > 1");
        let left = slab[ia].take().expect("live entry");
        let right = slab[ib].take().expect("live entry");
        let node = Tree::Node { weight: wa + wb, left: Box::new(left), right: Box::new(right) };
        let id = slab.len();
        heap.push(Reverse((wa + wb, id)));
        slab.push(Some(node));
    }
    let Reverse((_, root)) = heap.pop().expect("nonempty");
    slab[root].take()
}

/// Weighted path length Σ weight(s)·depth(s) — the cost Huffman
/// minimises; equal-WPL trees are equally optimal.
pub fn weighted_path_length(tree: &Tree, weights: &[i64]) -> i64 {
    tree.code_lengths().iter().map(|&(sym, depth)| weights[sym as usize] * i64::from(depth)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_example() {
        // Weights 5,9,12,13,16,45 → WPL 224 (classic CLRS example).
        let w = [5, 9, 12, 13, 16, 45];
        let t = huffman_tree(&w).unwrap();
        assert_eq!(t.weight(), 100);
        assert_eq!(weighted_path_length(&t, &w), 224);
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        let t = huffman_tree(&[1, 1]).unwrap();
        assert_eq!(t.code_lengths(), vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn single_symbol_is_depth_zero() {
        let t = huffman_tree(&[7]).unwrap();
        assert_eq!(t.code_lengths(), vec![(0, 0)]);
        assert_eq!(weighted_path_length(&t, &[7]), 0);
    }

    #[test]
    fn empty_alphabet_is_none() {
        assert!(huffman_tree(&[]).is_none());
    }

    #[test]
    fn kraft_equality_holds() {
        // Huffman codes are complete: Σ 2^-len = 1.
        let w = [3, 1, 4, 1, 5, 9, 2, 6];
        let t = huffman_tree(&w).unwrap();
        let sum: f64 = t.code_lengths().iter().map(|&(_, d)| 0.5f64.powi(d as i32)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "kraft sum {sum}");
    }

    #[test]
    fn uniform_weights_give_balanced_depths() {
        let w = [1; 8];
        let t = huffman_tree(&w).unwrap();
        assert!(t.code_lengths().iter().all(|&(_, d)| d == 3));
    }
}
