//! Stratified evaluation: the perfect model of programs with negation
//! and extrema outside recursion.
//!
//! The classic pipeline (Przymusinski; reference [8] of the paper):
//! build the predicate dependency graph, condense it into strongly
//! connected components, refuse programs where a negative (or extrema)
//! dependency stays inside a component, and otherwise saturate one
//! stratum at a time with the seminaive driver.

use std::collections::HashMap;

use gbc_ast::{Literal, Program, Rule, Symbol};
use gbc_storage::Database;

use crate::error::EngineError;
use crate::graph::DiGraph;
use crate::seminaive::Seminaive;

/// The predicate dependency structure of a program.
pub struct DependencyGraph {
    /// Dense id per predicate.
    pub pred_ids: HashMap<Symbol, usize>,
    /// Inverse of `pred_ids`.
    pub preds: Vec<Symbol>,
    /// Edges head → body predicate.
    pub graph: DiGraph,
    /// `(head, body)` pairs that are *negative* dependencies: through
    /// negation, or through any body atom of a rule with extrema (the
    /// `least`/`most` rewriting introduces negation over the whole body).
    pub negative: Vec<(usize, usize)>,
}

impl DependencyGraph {
    /// Build the dependency graph of `program`.
    pub fn build(program: &Program) -> DependencyGraph {
        let mut pred_ids: HashMap<Symbol, usize> = HashMap::new();
        let mut preds: Vec<Symbol> = Vec::new();
        let id = |s: Symbol, pred_ids: &mut HashMap<Symbol, usize>, preds: &mut Vec<Symbol>| {
            *pred_ids.entry(s).or_insert_with(|| {
                preds.push(s);
                preds.len() - 1
            })
        };
        // First pass: number every predicate.
        for r in &program.rules {
            id(r.head.pred, &mut pred_ids, &mut preds);
            for l in &r.body {
                if let Literal::Pos(a) | Literal::Neg(a) = l {
                    id(a.pred, &mut pred_ids, &mut preds);
                }
            }
        }
        let mut graph = DiGraph::new(preds.len());
        let mut negative = Vec::new();
        for r in &program.rules {
            let h = pred_ids[&r.head.pred];
            let rule_has_extrema = r.has_extrema();
            for l in &r.body {
                match l {
                    Literal::Pos(a) => {
                        let b = pred_ids[&a.pred];
                        graph.add_edge(h, b);
                        if rule_has_extrema {
                            negative.push((h, b));
                        }
                    }
                    Literal::Neg(a) => {
                        let b = pred_ids[&a.pred];
                        graph.add_edge(h, b);
                        negative.push((h, b));
                    }
                    _ => {}
                }
            }
        }
        DependencyGraph { pred_ids, preds, graph, negative }
    }

    /// SCCs in dependency-first order.
    pub fn strata(&self) -> Vec<Vec<usize>> {
        self.graph.sccs()
    }

    /// The recursive clique (SCC) containing `pred`, as predicate symbols.
    pub fn clique_of(&self, pred: Symbol) -> Vec<Symbol> {
        let Some(&pid) = self.pred_ids.get(&pred) else {
            return Vec::new();
        };
        self.strata()
            .into_iter()
            .find(|c| c.contains(&pid))
            .map(|c| c.into_iter().map(|i| self.preds[i]).collect())
            .unwrap_or_default()
    }
}

/// Evaluate a stratified program (negation/extrema allowed only across
/// strata; no `choice`, no `next`) over `edb`, returning the perfect
/// model. Facts embedded in the program are honoured as well.
pub fn evaluate_stratified(program: &Program, edb: &Database) -> Result<Database, EngineError> {
    program.validate()?;
    for r in &program.rules {
        if r.has_choice() || r.has_next() {
            return Err(EngineError::Unstratified {
                detail: format!("rule `{r}` uses choice/next; use the choice fixpoint instead"),
            });
        }
    }

    let dg = DependencyGraph::build(program);
    let strata = dg.strata();

    // Stratification check: no negative dependency inside an SCC.
    let mut comp_of = vec![usize::MAX; dg.preds.len()];
    for (ci, comp) in strata.iter().enumerate() {
        for &p in comp {
            comp_of[p] = ci;
        }
    }
    for &(h, b) in &dg.negative {
        if comp_of[h] == comp_of[b] {
            return Err(EngineError::Unstratified {
                detail: format!(
                    "negative/extrema dependency from `{}` to `{}` inside a recursive clique",
                    dg.preds[h], dg.preds[b]
                ),
            });
        }
    }

    let mut db = edb.clone();
    for fact in program.facts() {
        let row =
            fact.head.args.iter().map(|t| t.as_value().expect("validated ground fact")).collect();
        db.insert(fact.head.pred, row);
    }

    // Saturate stratum by stratum.
    let rules: Vec<&Rule> = program.proper_rules().collect();
    for comp in &strata {
        let comp_preds: Vec<Symbol> = comp.iter().map(|&i| dg.preds[i]).collect();
        let stratum_rules: Vec<Rule> = rules
            .iter()
            .filter(|r| comp_preds.contains(&r.head.pred))
            .map(|&r| r.clone())
            .collect();
        if stratum_rules.is_empty() {
            continue;
        }
        Seminaive::new(stratum_rules).saturate(&mut db)?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::{Atom, Term, Value};

    fn rule(head: Atom, body: Vec<Literal>, vars: &[&str]) -> Rule {
        Rule::new(head, body, vars.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn negation_across_strata() {
        // reach(X) <- source(X).
        // reach(Y) <- reach(X), e(X, Y).
        // unreachable(X) <- node(X), not reach(X).
        let program = Program::from_rules(vec![
            rule(
                Atom::new("reach", vec![Term::var(0)]),
                vec![Literal::pos("source", vec![Term::var(0)])],
                &["X"],
            ),
            rule(
                Atom::new("reach", vec![Term::var(1)]),
                vec![
                    Literal::pos("reach", vec![Term::var(0)]),
                    Literal::pos("e", vec![Term::var(0), Term::var(1)]),
                ],
                &["X", "Y"],
            ),
            rule(
                Atom::new("unreachable", vec![Term::var(0)]),
                vec![
                    Literal::pos("node", vec![Term::var(0)]),
                    Literal::neg("reach", vec![Term::var(0)]),
                ],
                &["X"],
            ),
        ]);
        let mut edb = Database::new();
        for n in ["a", "b", "c", "d"] {
            edb.insert_values("node", vec![Value::sym(n)]);
        }
        edb.insert_values("source", vec![Value::sym("a")]);
        edb.insert_values("e", vec![Value::sym("a"), Value::sym("b")]);
        edb.insert_values("e", vec![Value::sym("c"), Value::sym("d")]);
        let m = evaluate_stratified(&program, &edb).unwrap();
        let unreachable = Symbol::intern("unreachable");
        let got: Vec<String> = m.facts_of(unreachable).iter().map(|r| r[0].to_string()).collect();
        assert_eq!(got.len(), 2);
        assert!(got.contains(&"c".to_string()) && got.contains(&"d".to_string()));
    }

    #[test]
    fn rejects_negation_through_recursion() {
        // win(X) <- move(X, Y), not win(Y).  — not stratified.
        let program = Program::from_rules(vec![rule(
            Atom::new("win", vec![Term::var(0)]),
            vec![
                Literal::pos("move", vec![Term::var(0), Term::var(1)]),
                Literal::neg("win", vec![Term::var(1)]),
            ],
            &["X", "Y"],
        )]);
        assert!(matches!(
            evaluate_stratified(&program, &Database::new()),
            Err(EngineError::Unstratified { .. })
        ));
    }

    #[test]
    fn rejects_extrema_through_recursion() {
        // short(X, C) <- short(Y, C1), e(Y, X, C2), C = C1 + C2, least(C, X).
        let program = Program::from_rules(vec![rule(
            Atom::new("short", vec![Term::var(0), Term::var(1)]),
            vec![
                Literal::pos("short", vec![Term::var(2), Term::var(3)]),
                Literal::pos("e", vec![Term::var(2), Term::var(0), Term::var(4)]),
                Literal::cmp(
                    gbc_ast::CmpOp::Eq,
                    gbc_ast::term::Expr::var(1),
                    gbc_ast::term::Expr::binary(
                        gbc_ast::term::ArithOp::Add,
                        gbc_ast::term::Expr::var(3),
                        gbc_ast::term::Expr::var(4),
                    ),
                ),
                Literal::Least { cost: Term::var(1), group: vec![Term::var(0)] },
            ],
            &["X", "C", "Y", "C1", "C2"],
        )]);
        assert!(matches!(
            evaluate_stratified(&program, &Database::new()),
            Err(EngineError::Unstratified { .. })
        ));
    }

    #[test]
    fn rejects_choice_rules() {
        let program = Program::from_rules(vec![rule(
            Atom::new("a", vec![Term::var(0), Term::var(1)]),
            vec![
                Literal::pos("t", vec![Term::var(0), Term::var(1)]),
                Literal::Choice { left: vec![Term::var(0)], right: vec![Term::var(1)] },
            ],
            &["X", "Y"],
        )]);
        assert!(matches!(
            evaluate_stratified(&program, &Database::new()),
            Err(EngineError::Unstratified { .. })
        ));
    }

    #[test]
    fn program_facts_are_loaded() {
        let mut program = Program::new();
        program.push_fact("p", vec![Value::int(1)]);
        let m = evaluate_stratified(&program, &Database::new()).unwrap();
        assert_eq!(m.count(Symbol::intern("p")), 1);
    }

    #[test]
    fn extrema_on_lower_stratum_is_fine() {
        // best(X, C) <- arc(X, C), least(C, X).   (arc is EDB)
        let program = Program::from_rules(vec![rule(
            Atom::new("best", vec![Term::var(0), Term::var(1)]),
            vec![
                Literal::pos("arc", vec![Term::var(0), Term::var(1)]),
                Literal::Least { cost: Term::var(1), group: vec![Term::var(0)] },
            ],
            &["X", "C"],
        )]);
        let mut edb = Database::new();
        edb.insert_values("arc", vec![Value::sym("a"), Value::int(3)]);
        edb.insert_values("arc", vec![Value::sym("a"), Value::int(1)]);
        let m = evaluate_stratified(&program, &edb).unwrap();
        assert_eq!(
            m.facts_of(Symbol::intern("best")),
            vec![gbc_storage::Row::new(vec![Value::sym("a"), Value::int(1)])]
        );
    }

    #[test]
    fn clique_of_reports_mutual_recursion() {
        // p <- q; q <- p.
        let program = Program::from_rules(vec![
            rule(
                Atom::new("p", vec![Term::var(0)]),
                vec![Literal::pos("q", vec![Term::var(0)])],
                &["X"],
            ),
            rule(
                Atom::new("q", vec![Term::var(0)]),
                vec![Literal::pos("p", vec![Term::var(0)])],
                &["X"],
            ),
        ]);
        let dg = DependencyGraph::build(&program);
        let clique = dg.clique_of(Symbol::intern("p"));
        assert_eq!(clique.len(), 2);
    }
}
