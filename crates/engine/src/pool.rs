//! In-tree scoped worker pool for parallel flat-rule evaluation.
//!
//! The workspace has a zero-registry-dependency policy, so this is a
//! plain `std::thread::scope` fan-out rather than rayon: a
//! [`WorkerPool`] is just a thread count, and [`WorkerPool::run`]
//! spawns that many scoped workers which pull task indices from a
//! shared atomic counter (work stealing over a fixed task list) and
//! deposit results into per-task slots. The scope joins every worker
//! before returning, so tasks may freely borrow the caller's stack —
//! in particular the `&Database` the seminaive round reads.
//!
//! Determinism contract: results come back **in task order**, no matter
//! which worker ran which task or in what interleaving. Callers
//! partition work into contiguous chunks ([`WorkerPool::chunk_ranges`])
//! and concatenate the returned buffers, which reproduces the serial
//! enumeration order byte for byte (see DESIGN.md §9).
//!
//! γ-steps, choice commits and `(R,Q,L)` heap maintenance never enter
//! the pool — only the side-effect-free enumeration half of a
//! saturation round does; all inserts happen on the calling thread
//! after the merge.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The smallest slice of delta rows (or first-scan ids) worth handing
/// to a worker. Rounds below `2 * MIN_CHUNK` run inline on the calling
/// thread: the typical alternation round between γ-steps derives a
/// handful of tuples, and a thread round-trip costs more than the join
/// itself. The threshold only gates *where* work runs — results are
/// identical either way.
pub const MIN_CHUNK: usize = 64;

/// An upper bound on chunks per round, as a multiple of the thread
/// count — enough slack for work stealing to even out skewed chunks
/// without drowning the merge in tiny buffers.
const CHUNKS_PER_THREAD: usize = 4;

/// Resolve the thread count the CLI default asks for: the `GBC_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 if unknown).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("GBC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A fixed-width scoped worker pool. Copyable configuration — threads
/// are spawned per [`WorkerPool::run`] call (and only for rounds big
/// enough to cross [`MIN_CHUNK`]), living exactly as long as the
/// borrowed data they read.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool { threads: threads.max(1) }
    }

    /// The single-threaded pool: every `run` executes inline.
    pub fn serial() -> WorkerPool {
        WorkerPool { threads: 1 }
    }

    /// Configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Would this pool ever fan out?
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Partition `len` items into contiguous `(start, end)` ranges.
    /// Returns a single full range when the pool is serial or `len` is
    /// below the parallel threshold; otherwise up to
    /// `threads * CHUNKS_PER_THREAD` ranges of at least [`MIN_CHUNK`]
    /// items. Concatenating the ranges always re-yields `0..len` in
    /// order.
    pub fn chunk_ranges(&self, len: usize) -> Vec<(usize, usize)> {
        if !self.is_parallel() || len < 2 * MIN_CHUNK {
            return if len == 0 { Vec::new() } else { vec![(0, len)] };
        }
        let max_chunks = self.threads * CHUNKS_PER_THREAD;
        let n_chunks = len.div_ceil(MIN_CHUNK).min(max_chunks).max(1);
        let chunk = len.div_ceil(n_chunks);
        (0..n_chunks)
            .map(|i| (i * chunk, ((i + 1) * chunk).min(len)))
            .filter(|(lo, hi)| lo < hi)
            .collect()
    }

    /// Run `n_tasks` tasks across the pool and return their results in
    /// task order. `task(index, worker)` receives the task index and
    /// the id (0-based) of the worker executing it; it must not rely on
    /// which worker that is. Runs inline, in order, on the calling
    /// thread when the pool is serial or there is at most one task.
    /// Worker panics propagate to the caller when the scope joins.
    pub fn run<T, F>(&self, n_tasks: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        if !self.is_parallel() || n_tasks <= 1 {
            return (0..n_tasks).map(|i| task(i, 0)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(n_tasks);
        std::thread::scope(|s| {
            let (next, slots, task) = (&next, &slots, &task);
            for w in 0..workers {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_tasks {
                        break;
                    }
                    let out = task(i, w);
                    *slots[i].lock().expect("pool slot lock") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("pool slot lock").expect("every task index is claimed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = WorkerPool::serial();
        let order = Mutex::new(Vec::new());
        let out = pool.run(5, |i, w| {
            assert_eq!(w, 0);
            order.lock().unwrap().push(i);
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_pool_returns_results_in_task_order() {
        let pool = WorkerPool::new(4);
        for _ in 0..16 {
            let out = pool.run(37, |i, _| i as u64 * 3);
            assert_eq!(out, (0..37u64).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly_once_in_order() {
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            for len in [0usize, 1, 63, 64, 127, 128, 129, 1000, 4096, 100_000] {
                let ranges = pool.chunk_ranges(len);
                let mut pos = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, pos, "gapless at len {len} threads {threads}");
                    assert!(hi > lo);
                    pos = hi;
                }
                assert_eq!(pos, len, "covering at len {len} threads {threads}");
            }
        }
    }

    #[test]
    fn small_rounds_stay_single_chunk() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.chunk_ranges(2 * MIN_CHUNK - 1).len(), 1);
        assert!(pool.chunk_ranges(2 * MIN_CHUNK).len() > 1);
        // Serial pools never split, no matter the size.
        assert_eq!(WorkerPool::serial().chunk_ranges(1_000_000).len(), 1);
    }

    #[test]
    fn workers_share_borrowed_data() {
        let data: Vec<u64> = (0..10_000).collect();
        let pool = WorkerPool::new(4);
        let ranges = pool.chunk_ranges(data.len());
        let sums = pool.run(ranges.len(), |ci, _| {
            let (lo, hi) = ranges[ci];
            data[lo..hi].iter().sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn env_override_parses_positive_integers_only() {
        // default_threads reads the live environment; exercise the
        // parse through the public contract instead of mutating env in
        // a test process that may run threaded siblings.
        assert!(default_threads() >= 1);
    }
}
