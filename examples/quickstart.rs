//! Quickstart: write a stage-stratified program, compile it, run it,
//! inspect the model.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gbc_ast::Value;
use gbc_core::{compile, ProgramClass};
use gbc_storage::Database;

fn main() {
    // Example 5 of the paper: sort a relation p(X, C) by cost. The
    // `next(I)` goal mints one stage number per derived fact; `least`
    // makes each stage pick the cheapest remaining tuple.
    let source = "
        sp(nil, 0, 0).
        sp(X, C, I) <- next(I), p(X, C), least(C, I).
    ";
    let program = gbc_parser::parse_program(source).expect("parse");
    println!("program:\n{program}");

    // Compile: validation, stage-stratification analysis, greedy plan.
    let compiled = compile(program).expect("compile");
    println!("class: {:?}", compiled.class());
    assert_eq!(*compiled.class(), ProgramClass::StageStratified { alternating: true });
    assert!(compiled.has_greedy_plan());

    // Load an EDB and run the Alternating Stage-Choice Fixpoint.
    let mut edb = Database::new();
    for (name, cost) in [("pear", 30), ("apple", 10), ("quince", 40), ("fig", 20)] {
        edb.insert_values("p", vec![Value::sym(name), Value::int(cost)]);
    }
    let run = compiled.run_greedy(&edb).expect("run");

    println!("model ({} γ steps):", run.stats.gamma_steps);
    println!("{}", run.db.canonical_form());

    // The run is a stable model of the rewritten program (Theorem 1).
    let ok = gbc_core::verify_stable_model(compiled.program(), &edb, &run).expect("verify");
    println!("stable model check: {}", if ok { "PASS" } else { "FAIL" });
    assert!(ok);
}
