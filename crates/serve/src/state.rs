//! Shared server state: loaded sessions (compiled program + EDB pairs)
//! and the process-lifetime metrics plane.
//!
//! A **session** is one loaded program: compiled once, then evaluated
//! by any number of concurrent `/run` requests. [`gbc_core::Compiled`]
//! and [`gbc_storage::Database`] are both `Send + Sync` and read-only
//! during evaluation (every run materializes its own result database),
//! so sessions live behind plain `Arc`s — request workers never clone a
//! plan or an EDB.
//!
//! The metrics side is a [`MetricsRegistry`] (see
//! `gbc_telemetry::registry`): a plane deliberately separate from the
//! per-run [`gbc_telemetry::Metrics`] counters, so a `/metrics` scrape
//! can never perturb the DESIGN.md §9 determinism contract — pinned
//! run counters stay byte-identical whether or not anyone is watching.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use gbc_core::Compiled;
use gbc_storage::Database;
use gbc_telemetry::metrics::Counter;
use gbc_telemetry::{Gauge, JournalBuffer, Json, MetricsRegistry, SharedHist};

/// One loaded program, shared read-only across request workers.
pub struct Session {
    /// Registration name (the `session` field of `/run` bodies).
    pub name: String,
    /// Where the program came from (file list or `<inline>`), for
    /// `GET /programs`.
    pub source: String,
    /// The compiled program: plans, analysis, expansion — built once.
    pub compiled: Arc<Compiled>,
    /// The extensional database requests evaluate against. Empty for
    /// programs that carry their facts inline (the `gbc run` shape).
    pub edb: Arc<Database>,
    /// Completed `/run` requests against this session.
    pub runs: AtomicU64,
    /// Stats report (schema v2, same shape as `--stats-json`) of the
    /// most recent run, served by `GET /stats`.
    pub last_stats: RwLock<Option<Json>>,
    /// Choice-audit journal of the most recent journaled run, served as
    /// JSON-lines by `GET /journal`. Written mid-run (the buffer is a
    /// live trace sink), so a concurrent reader sees the events
    /// committed so far.
    pub journal: RwLock<Option<Arc<JournalBuffer>>>,
}

impl Session {
    /// Wrap a compiled program + EDB as a fresh session.
    pub fn new(name: &str, source: &str, compiled: Compiled, edb: Database) -> Session {
        Session {
            name: name.to_owned(),
            source: source.to_owned(),
            compiled: Arc::new(compiled),
            edb: Arc::new(edb),
            runs: AtomicU64::new(0),
            last_stats: RwLock::new(None),
            journal: RwLock::new(None),
        }
    }

    /// Completed runs.
    pub fn run_count(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }
}

/// Handles to every pre-registered server metric. Registration happens
/// once at startup so `GET /metrics` always exposes the full name set
/// (a scrape before the first request still sees zeros, not absences).
pub struct ServerMetrics {
    /// The registry itself (rendered by `GET /metrics`).
    pub registry: MetricsRegistry,
    /// `gbc_http_requests_total{endpoint=...}` per known endpoint.
    requests: Vec<(&'static str, Arc<Counter>)>,
    /// `gbc_http_request_nanoseconds{endpoint=...}` per known endpoint.
    latency: Vec<(&'static str, Arc<SharedHist>)>,
    /// Requests answered with a non-2xx status.
    pub errors: Arc<Counter>,
    /// Completed evaluation runs, across sessions.
    pub runs: Arc<Counter>,
    /// Per-γ-round wall time, merged from every run's round histogram.
    pub gamma_rounds: Arc<SharedHist>,
    /// Loaded sessions.
    pub sessions: Arc<Gauge>,
    /// HTTP worker threads.
    pub pool_workers: Arc<Gauge>,
    /// Workers currently handling a request (the occupancy gauge).
    pub pool_busy: Arc<Gauge>,
    /// Global value-dictionary size (refreshed on scrape).
    pub dict_entries: Arc<Gauge>,
}

/// Every route the server answers; `/metrics` series are labelled by
/// these names plus the `other` catch-all.
pub const ENDPOINTS: &[&str] =
    &["/healthz", "/metrics", "/stats", "/journal", "/programs", "/load", "/run", "other"];

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = MetricsRegistry::new();
        let requests = ENDPOINTS
            .iter()
            .map(|ep| {
                let name = format!("gbc_http_requests_total{{endpoint=\"{ep}\"}}");
                (*ep, registry.counter(&name, "HTTP requests received, by endpoint"))
            })
            .collect();
        let latency = ENDPOINTS
            .iter()
            .map(|ep| {
                let name = format!("gbc_http_request_nanoseconds{{endpoint=\"{ep}\"}}");
                (*ep, registry.hist(&name, "End-to-end request handling latency, by endpoint"))
            })
            .collect();
        ServerMetrics {
            errors: registry
                .counter("gbc_http_errors_total", "HTTP requests answered with a non-2xx status"),
            runs: registry.counter("gbc_runs_total", "Completed evaluation runs"),
            gamma_rounds: registry
                .hist("gbc_gamma_round_nanoseconds", "Per-gamma-round wall time across runs"),
            sessions: registry.gauge("gbc_sessions_loaded", "Loaded program sessions"),
            pool_workers: registry.gauge("gbc_pool_workers", "HTTP worker threads"),
            pool_busy: registry
                .gauge("gbc_pool_busy_workers", "Workers currently handling a request"),
            dict_entries: registry
                .gauge("gbc_dictionary_entries", "Entries in the global value dictionary"),
            requests,
            latency,
            registry,
        }
    }

    /// The request counter for `path` (the `other` series for unknown
    /// paths).
    pub fn requests_for(&self, path: &str) -> &Arc<Counter> {
        self.requests
            .iter()
            .find(|(ep, _)| *ep == path)
            .or_else(|| self.requests.last())
            .map(|(_, c)| c)
            .expect("endpoint counters are pre-registered")
    }

    /// The latency histogram for `path` (the `other` series for unknown
    /// paths).
    pub fn latency_for(&self, path: &str) -> &Arc<SharedHist> {
        self.latency
            .iter()
            .find(|(ep, _)| *ep == path)
            .or_else(|| self.latency.last())
            .map(|(_, h)| h)
            .expect("endpoint histograms are pre-registered")
    }
}

/// Everything the request workers share.
pub struct ServerState {
    /// Loaded sessions, in load order (replacement keeps the slot).
    sessions: RwLock<Vec<Arc<Session>>>,
    /// The metrics plane.
    pub metrics: ServerMetrics,
    /// Server start, for `/healthz` uptime.
    pub started: Instant,
}

impl Default for ServerState {
    fn default() -> ServerState {
        ServerState::new()
    }
}

impl ServerState {
    /// Fresh state with an empty session table and all metrics
    /// registered at zero.
    pub fn new() -> ServerState {
        ServerState {
            sessions: RwLock::new(Vec::new()),
            metrics: ServerMetrics::new(),
            started: Instant::now(),
        }
    }

    /// Install (or replace) a session. Replacement keeps the original
    /// table position so `GET /programs` order is stable.
    pub fn install(&self, session: Session) {
        let session = Arc::new(session);
        let mut sessions = self.sessions.write().expect("session table");
        match sessions.iter_mut().find(|s| s.name == session.name) {
            Some(slot) => *slot = session,
            None => sessions.push(session),
        }
        self.metrics.sessions.set(sessions.len() as i64);
    }

    /// Look up a session by name.
    pub fn session(&self, name: &str) -> Option<Arc<Session>> {
        self.sessions.read().expect("session table").iter().find(|s| s.name == name).cloned()
    }

    /// Every session, in load order.
    pub fn sessions(&self) -> Vec<Arc<Session>> {
        self.sessions.read().expect("session table").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled(src: &str) -> Compiled {
        gbc_core::compile(gbc_parser::parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn install_replaces_by_name_and_tracks_the_gauge() {
        let state = ServerState::new();
        state.install(Session::new("a", "<inline>", compiled("p(1)."), Database::new()));
        state.install(Session::new("b", "<inline>", compiled("q(2)."), Database::new()));
        state.install(Session::new("a", "<inline>", compiled("p(3)."), Database::new()));
        let names: Vec<String> = state.sessions().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, ["a", "b"], "replacement keeps load order");
        assert_eq!(state.metrics.sessions.get(), 2);
        assert!(state.session("a").is_some() && state.session("missing").is_none());
    }

    #[test]
    fn endpoint_series_fall_back_to_other() {
        let m = ServerMetrics::new();
        m.requests_for("/run").inc();
        m.requests_for("/nope").inc();
        m.requests_for("/nope").inc();
        let text = m.registry.render_prometheus();
        assert!(text.contains("gbc_http_requests_total{endpoint=\"/run\"} 1\n"));
        assert!(text.contains("gbc_http_requests_total{endpoint=\"other\"} 2\n"));
    }
}
