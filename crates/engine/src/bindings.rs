//! Binding frames: variable assignments during rule-body matching.

use gbc_ast::{Value, VarId};
use gbc_storage::DICT_MISS;

/// A flat binding frame indexed by [`VarId`]. Bind/unbind pairs follow a
/// trail discipline inside the matcher, so the frame is reused across
/// the whole enumeration of a rule body without allocation churn.
///
/// Alongside each value slot the frame carries the value's dictionary
/// id when the binder knew it ([`Bindings::bind_encoded`] — the id-space
/// matcher always does). Scans read [`Bindings::id_of`] to build index
/// keys and compare repeated variables as plain `u32`s; a slot bound
/// through the value-level path ([`Bindings::bind`], e.g. arithmetic
/// assignments) carries [`DICT_MISS`] and falls back to value
/// comparison. Equality of frames is defined over the **values** only:
/// whether a binder happened to know an id is bookkeeping, not content.
#[derive(Clone, Debug, Default, Eq)]
pub struct Bindings {
    slots: Vec<Option<Value>>,
    ids: Vec<u32>,
}

impl PartialEq for Bindings {
    fn eq(&self, other: &Self) -> bool {
        self.slots == other.slots
    }
}

impl Bindings {
    /// A frame with room for `n` variables, all unbound.
    pub fn new(n: usize) -> Bindings {
        Bindings { slots: vec![None; n], ids: vec![DICT_MISS; n] }
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: VarId) -> Option<&Value> {
        self.slots.get(v.index()).and_then(Option::as_ref)
    }

    /// The dictionary id bound to `v`, or [`DICT_MISS`] when `v` is
    /// unbound or was bound without a known id.
    pub fn id_of(&self, v: VarId) -> u32 {
        self.ids.get(v.index()).copied().unwrap_or(DICT_MISS)
    }

    /// True when `v` is bound.
    pub fn is_bound(&self, v: VarId) -> bool {
        self.get(v).is_some()
    }

    /// Bind `v` to `val` (id unknown).
    ///
    /// # Panics
    /// Debug-asserts that `v` was unbound — the matcher must check-and-
    /// compare rather than rebind.
    pub fn bind(&mut self, v: VarId, val: Value) {
        debug_assert!(self.slots[v.index()].is_none(), "rebinding {v:?}");
        self.slots[v.index()] = Some(val);
    }

    /// Bind `v` to `val` whose dictionary id is `id`.
    pub fn bind_encoded(&mut self, v: VarId, val: Value, id: u32) {
        debug_assert!(self.slots[v.index()].is_none(), "rebinding {v:?}");
        self.slots[v.index()] = Some(val);
        self.ids[v.index()] = id;
    }

    /// Remove the binding of `v` (trail rollback).
    pub fn unbind(&mut self, v: VarId) {
        self.slots[v.index()] = None;
        self.ids[v.index()] = DICT_MISS;
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no variables exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Snapshot of the current assignment (for collecting match results).
    pub fn snapshot(&self) -> Vec<Option<Value>> {
        self.slots.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_get_unbind() {
        let mut b = Bindings::new(3);
        assert!(!b.is_bound(VarId(1)));
        b.bind(VarId(1), Value::int(42));
        assert_eq!(b.get(VarId(1)), Some(&Value::int(42)));
        assert_eq!(b.id_of(VarId(1)), DICT_MISS, "value-level bind carries no id");
        b.unbind(VarId(1));
        assert!(!b.is_bound(VarId(1)));
    }

    #[test]
    fn bind_encoded_carries_the_id() {
        let mut b = Bindings::new(2);
        let v = Value::int(7);
        let id = gbc_storage::dictionary::encode(&v);
        b.bind_encoded(VarId(0), v.clone(), id);
        assert_eq!(b.get(VarId(0)), Some(&v));
        assert_eq!(b.id_of(VarId(0)), id);
        b.unbind(VarId(0));
        assert_eq!(b.id_of(VarId(0)), DICT_MISS);
    }

    #[test]
    fn equality_ignores_id_knowledge() {
        let v = Value::int(9);
        let id = gbc_storage::dictionary::encode(&v);
        let mut a = Bindings::new(1);
        let mut b = Bindings::new(1);
        a.bind(VarId(0), v.clone());
        b.bind_encoded(VarId(0), v, id);
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_get_is_none() {
        let b = Bindings::new(1);
        assert_eq!(b.get(VarId(9)), None);
        assert_eq!(b.id_of(VarId(9)), DICT_MISS);
    }

    #[test]
    #[should_panic(expected = "rebinding")]
    #[cfg(debug_assertions)]
    fn rebinding_panics_in_debug() {
        let mut b = Bindings::new(1);
        b.bind(VarId(0), Value::int(1));
        b.bind(VarId(0), Value::int(2));
    }
}
