//! Interned symbols.
//!
//! Predicate names, constants like `a` or `engl`, and function symbols
//! (the Huffman tree constructor `t`) are interned once per process and
//! compared as `u32`s thereafter. Interned strings are leaked — the
//! interner lives for the lifetime of the process, which is the usual
//! trade-off for compiler-style workloads and keeps `as_str` free of
//! locks on the read path.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, hash and compare.
///
/// Equality is by interner id; [`Ord`] is by the *resolved string* so
/// that orderings are independent of interning order (important for
/// deterministic tie-breaking in the greedy executor).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner { map: HashMap::new(), strings: Vec::new() }))
}

impl Symbol {
    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(s: &str) -> Symbol {
        let mut guard = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(guard.strings.len()).expect("interner overflow");
        guard.strings.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        let guard = interner().lock().expect("symbol interner poisoned");
        guard.strings[self.0 as usize]
    }

    /// The raw interner id. Exposed for dense-map keying in the engine.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("prm");
        let b = Symbol::intern("prm");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "prm");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::intern("least"), Symbol::intern("most"));
    }

    #[test]
    fn ordering_is_lexicographic_not_by_id() {
        // Intern in reverse lexicographic order; Ord must still be by string.
        let z = Symbol::intern("zzz_order_probe");
        let a = Symbol::intern("aaa_order_probe");
        assert!(a < z);
    }

    #[test]
    fn display_shows_the_string() {
        assert_eq!(Symbol::intern("takes").to_string(), "takes");
    }
}
