//! Ground values of the (reduced) Herbrand universe.
//!
//! The paper's programs range over integers (costs, grades, stage
//! numbers), symbolic constants (`a`, `engl`, `nil`) and — in the
//! Huffman program of Example 6 — terms built from the tree functor
//! `t(X, Y)`. [`Value`] covers all of these.
//!
//! The total order on values serves two purposes: it is the order used
//! by `least`/`most` cost arguments (integers compare numerically), and
//! it provides deterministic tie-breaking everywhere a "pick any one"
//! step occurs in a deterministic chooser.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::symbol::Symbol;

/// A ground value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// The distinguished constant `nil` used by the paper's exit rules
    /// (e.g. `st(nil, a, 0, 0)`).
    Nil,
    /// 64-bit integer: costs, grades, stage numbers.
    Int(i64),
    /// Interned symbolic constant (`a`, `engl`, `mark`, …).
    Sym(Symbol),
    /// String literal. Rarely used by the paper's programs but part of
    /// any practical EDB loading path.
    Str(Arc<str>),
    /// Compound term `f(v1, …, vk)` — e.g. the Huffman tree constructor
    /// `t(left, right)`.
    Func(Symbol, Arc<[Value]>),
}

impl Value {
    /// Shorthand for an interned symbolic constant.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Symbol::intern(s))
    }

    /// Shorthand for an integer.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Shorthand for a string.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Shorthand for a compound term.
    pub fn func(name: &str, args: Vec<Value>) -> Value {
        Value::Func(Symbol::intern(name), Arc::from(args))
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// True for `Int`.
    pub fn is_int(&self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// Rank used to order values of different shapes. Within a shape the
    /// natural order applies.
    fn shape_rank(&self) -> u8 {
        match self {
            Value::Nil => 0,
            Value::Int(_) => 1,
            Value::Sym(_) => 2,
            Value::Str(_) => 3,
            Value::Func(..) => 4,
        }
    }

    /// Structural size of the term (1 for atoms, 1 + sum for functors).
    /// Useful for tests and for bounding recursion in property tests.
    pub fn size(&self) -> usize {
        match self {
            Value::Func(_, args) => 1 + args.iter().map(Value::size).sum::<usize>(),
            _ => 1,
        }
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Nil, Nil) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Sym(a), Sym(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Func(f, fa), Func(g, ga)) => f
                .cmp(g)
                .then_with(|| fa.len().cmp(&ga.len()))
                .then_with(|| fa.iter().cmp(ga.iter())),
            _ => self.shape_rank().cmp(&other.shape_rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => f.write_str("nil"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Func(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_order_numerically() {
        assert!(Value::int(-3) < Value::int(0));
        assert!(Value::int(2) < Value::int(10));
    }

    #[test]
    fn nil_sorts_before_everything() {
        assert!(Value::Nil < Value::int(i64::MIN));
        assert!(Value::Nil < Value::sym("a"));
        assert!(Value::Nil < Value::func("t", vec![]));
    }

    #[test]
    fn functor_terms_order_structurally() {
        let ab = Value::func("t", vec![Value::sym("a"), Value::sym("b")]);
        let ac = Value::func("t", vec![Value::sym("a"), Value::sym("c")]);
        assert!(ab < ac);
        // Shorter argument list first when functor names match.
        let a = Value::func("t", vec![Value::sym("z")]);
        assert!(a < ab);
    }

    #[test]
    fn display_round_trips_the_paper_shapes() {
        let tree = Value::func(
            "t",
            vec![Value::sym("a"), Value::func("t", vec![Value::sym("b"), Value::sym("c")])],
        );
        assert_eq!(tree.to_string(), "t(a,t(b,c))");
        assert_eq!(Value::Nil.to_string(), "nil");
    }

    #[test]
    fn size_counts_nodes() {
        let tree = Value::func("t", vec![Value::sym("a"), Value::sym("b")]);
        assert_eq!(tree.size(), 3);
        assert_eq!(Value::int(7).size(), 1);
    }

    #[test]
    fn equal_values_compare_equal_and_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Value::func("t", vec![Value::int(1)]);
        let b = Value::func("t", vec![Value::int(1)]);
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }
}
