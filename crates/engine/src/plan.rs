//! Compiled join plans: sideways information passing, done once.
//!
//! The dynamic matcher in [`crate::eval`] re-ranks every pending body
//! literal at every recursion depth of every call — classifying each
//! literal costs an `eval_term` walk per argument, and the same rule is
//! evaluated thousands of times across seminaive rounds and γ steps.
//! The ranking, however, only depends on *which variables are bound*
//! at each step, and boundness is branch-invariant: every branch at a
//! given depth has executed exactly the same step sequence, so the
//! bound set — and therefore the chosen literal order — is a function
//! of the rule alone (plus, for deltas, which occurrence is focused).
//!
//! [`JoinPlan::compile`] exploits that: it simulates the matcher's
//! selection loop over a boolean bound-set, reproducing the exact
//! ranking (ground filters first, then `=` assignments, then the
//! focused atom, then the atom with the most ground columns, first
//! literal winning ties) and records the resulting step sequence. The
//! executor then just runs the steps: no re-classification, no key
//! re-derivation, constants prefiltered at compile time, and scans go
//! through [`gbc_storage::Relation::select_ids_into`] so rows are read
//! in place from the arena instead of being cloned out.
//!
//! [`RulePlan`] bundles the unfocused plan with one variant per
//! positive literal (seminaive focuses each occurrence in turn);
//! [`PlanCache`] lazily compiles and retains one `RulePlan` per rule,
//! counting reuse in the `plan_cache_hits` metric.

use std::sync::Arc;
use std::time::Instant;

use gbc_ast::{Atom, CmpOp, Expr, Literal, Rule, Term, Value, VarId};
use gbc_storage::{dictionary, Database, RowsView, DICT_MISS};
use gbc_telemetry::{Metrics, RuleProfiler};

use crate::bindings::Bindings;
use crate::error::EngineError;
use crate::eval::{eval_expr, eval_term, match_term, match_term_id, Focus};
use crate::pool::{FanoutObs, WorkerPool};

/// One ingredient of a scan's index key, resolved at compile time.
#[derive(Clone, Debug)]
enum KeyPart {
    /// The argument is a ground term; its dictionary id is interned
    /// **once, at plan-compile time** (this is the constant-prefilter
    /// case — the index does the filtering, and no per-row or per-call
    /// re-encoding ever happens).
    Const(u32),
    /// The argument is a variable that is bound by the time this scan
    /// runs; read its id straight out of the binding slots.
    Var(VarId),
    /// A compound term whose variables are all bound: evaluate
    /// `args[col]` against the bindings at run time.
    Eval(usize),
}

/// Resolve one key ingredient to a dictionary id. Values reached
/// through the value-level side (arithmetic assignments, evaluated
/// compound terms) use a lookup-only encode: a value the dictionary has
/// never seen cannot be stored in any relation, so the [`DICT_MISS`]
/// key probes normally and matches nothing — exactly the old
/// value-keyed behaviour, counter for counter.
fn key_id(part: &KeyPart, a: &Atom, b: &Bindings) -> u32 {
    match part {
        KeyPart::Const(id) => *id,
        KeyPart::Var(var) => {
            let id = b.id_of(*var);
            if id != DICT_MISS {
                id
            } else {
                dictionary::try_encode(b.get(*var).expect("compiled as bound"))
            }
        }
        KeyPart::Eval(col) => {
            dictionary::try_encode(&eval_term(&a.args[*col], b).expect("compiled as ground"))
        }
    }
}

/// One step of a compiled plan, in execution order.
#[derive(Clone, Debug)]
enum PlanStep {
    /// `rule.body[lit]` is a comparison, ground at this point: evaluate
    /// both sides and prune on failure.
    Filter { lit: usize },
    /// `rule.body[lit]` is `t = e` with exactly one side ground: bind
    /// the bare term on the other side. `bind_lhs` says which side is
    /// the target.
    Assign { lit: usize, bind_lhs: bool },
    /// `rule.body[lit]` is a ground negation: membership test.
    NegCheck { lit: usize },
    /// `rule.body[lit]` is a positive atom: probe the relation on
    /// `key_cols` (ascending) with the values described by `key`, then
    /// unify only `match_cols` per candidate row — key columns are
    /// already guaranteed equal by the index. A focused scan iterates
    /// the caller's delta rows instead and unifies every column.
    Scan {
        lit: usize,
        key_cols: Vec<usize>,
        key: Vec<KeyPart>,
        match_cols: Vec<usize>,
        focused: bool,
    },
}

/// Static facts about one rule, established by whole-program analysis.
///
/// Computed in `gbc-core` (which owns the type/reachability passes —
/// the engine sits below it in the crate graph) and handed to
/// [`RulePlan::compile_typed`]; `Default` is the no-information state
/// and compiles exactly like the untyped path.
#[derive(Clone, Debug, Default)]
pub struct RuleStatics {
    /// The rule provably never fires (reads a provably-empty predicate
    /// or carries a constant-false comparison): its plan matches
    /// nothing and matching short-circuits.
    pub dead: bool,
    /// Body literal indices of constant-**true** comparisons; they are
    /// dropped from the compiled step sequence instead of evaluating to
    /// `true` on every enumerated row.
    pub const_true_lits: Vec<usize>,
}

/// A compiled literal order for one (rule, focus) combination.
#[derive(Clone, Debug)]
pub struct JoinPlan {
    steps: Vec<PlanStep>,
}

fn term_ground(t: &Term, bound: &[bool]) -> bool {
    match t {
        Term::Var(v) => bound.get(v.index()).copied().unwrap_or(false),
        Term::Const(_) => true,
        Term::Func(_, args) => args.iter().all(|a| term_ground(a, bound)),
    }
}

fn expr_ground(e: &Expr, bound: &[bool]) -> bool {
    match e {
        Expr::Term(t) => term_ground(t, bound),
        Expr::Neg(inner) => expr_ground(inner, bound),
        Expr::Binary(_, l, r) => expr_ground(l, bound) && expr_ground(r, bound),
    }
}

fn mark_term_bound(t: &Term, bound: &mut [bool]) {
    match t {
        Term::Var(v) => {
            if let Some(slot) = bound.get_mut(v.index()) {
                *slot = true;
            }
        }
        Term::Const(_) => {}
        Term::Func(_, args) => {
            for a in args {
                mark_term_bound(a, bound);
            }
        }
    }
}

impl JoinPlan {
    /// Compile the literal order for `rule`, optionally treating the
    /// positive literal at `focus_lit` as the focused (delta)
    /// occurrence. Mirrors the dynamic matcher's ranking exactly so
    /// the enumeration order — and with it every downstream counter —
    /// is unchanged.
    pub fn compile(rule: &Rule, focus_lit: Option<usize>) -> Result<JoinPlan, EngineError> {
        JoinPlan::compile_typed(rule, focus_lit, &RuleStatics::default())
    }

    /// [`JoinPlan::compile`] with analysis results applied: literals
    /// listed in `statics.const_true_lits` are folded out of the step
    /// sequence (they hold on every row, so dropping them changes
    /// neither the matches nor the enumeration order).
    pub fn compile_typed(
        rule: &Rule,
        focus_lit: Option<usize>,
        statics: &RuleStatics,
    ) -> Result<JoinPlan, EngineError> {
        if rule.has_next() {
            return Err(EngineError::UnexpandedNext { rule: rule.to_string() });
        }
        let mut bound = vec![false; rule.num_vars()];
        let mut pending: Vec<usize> = rule
            .body
            .iter()
            .enumerate()
            .filter(|(i, l)| !l.is_meta() && !statics.const_true_lits.contains(i))
            .map(|(i, _)| i)
            .collect();
        let mut steps = Vec::with_capacity(pending.len());
        while !pending.is_empty() {
            let mut best: Option<(usize, usize, u32)> = None; // (pending idx, rank, tie)
            for (pi, &li) in pending.iter().enumerate() {
                let (rank, tie) = match &rule.body[li] {
                    Literal::Pos(a) => {
                        let ground = a.args.iter().filter(|t| term_ground(t, &bound)).count();
                        let focused = focus_lit == Some(li);
                        (2, if focused { 0 } else { u32::MAX - ground as u32 })
                    }
                    Literal::Neg(a) => {
                        if !a.args.iter().all(|t| term_ground(t, &bound)) {
                            continue;
                        }
                        (0, 0)
                    }
                    Literal::Compare { op, lhs, rhs } => {
                        let lg = expr_ground(lhs, &bound);
                        let rg = expr_ground(rhs, &bound);
                        match (lg, rg) {
                            (true, true) => (0, 0),
                            (true, false) | (false, true) if *op == CmpOp::Eq => {
                                let unbound = if lg { rhs } else { lhs };
                                if unbound.as_bare_term().is_none() {
                                    continue;
                                }
                                (1, 0)
                            }
                            _ => continue,
                        }
                    }
                    _ => unreachable!("meta literals are filtered out"),
                };
                if best.map_or(true, |(_, br, bt)| (rank, tie) < (br, bt)) {
                    best = Some((pi, rank, tie));
                }
            }
            let Some((pi, _, _)) = best else {
                return Err(EngineError::NoEvaluableLiteral { rule: rule.to_string() });
            };
            let li = pending.remove(pi);
            match &rule.body[li] {
                Literal::Pos(a) => {
                    let focused = focus_lit == Some(li);
                    let mut key_cols = Vec::new();
                    let mut key = Vec::new();
                    let mut match_cols = Vec::new();
                    for (col, t) in a.args.iter().enumerate() {
                        if !focused && term_ground(t, &bound) {
                            key_cols.push(col);
                            key.push(match t {
                                Term::Var(v) => KeyPart::Var(*v),
                                Term::Const(c) => KeyPart::Const(dictionary::encode(c)),
                                Term::Func(..) => match t.as_value() {
                                    Some(v) => KeyPart::Const(dictionary::encode(&v)),
                                    None => KeyPart::Eval(col),
                                },
                            });
                        } else {
                            match_cols.push(col);
                        }
                    }
                    for t in &a.args {
                        mark_term_bound(t, &mut bound);
                    }
                    steps.push(PlanStep::Scan { lit: li, key_cols, key, match_cols, focused });
                }
                Literal::Neg(_) => steps.push(PlanStep::NegCheck { lit: li }),
                Literal::Compare { lhs, rhs, .. } => {
                    let lg = expr_ground(lhs, &bound);
                    let rg = expr_ground(rhs, &bound);
                    if lg && rg {
                        steps.push(PlanStep::Filter { lit: li });
                    } else {
                        let target = if lg { rhs } else { lhs };
                        let term = target.as_bare_term().expect("selected as assignable");
                        mark_term_bound(term, &mut bound);
                        steps.push(PlanStep::Assign { lit: li, bind_lhs: !lg });
                    }
                }
                _ => unreachable!("meta literals are filtered out"),
            }
        }
        Ok(JoinPlan { steps })
    }
}

/// The compiled plans of one rule: the unfocused order plus one
/// variant per positive body literal (the occurrence seminaive deltas
/// focus on).
#[derive(Clone, Debug)]
pub struct RulePlan {
    base: JoinPlan,
    focused: Vec<(usize, JoinPlan)>,
    /// Analysis proved the rule can never fire: matching is a no-op.
    dead: bool,
}

impl RulePlan {
    /// Compile every variant of `rule`.
    pub fn compile(rule: &Rule) -> Result<RulePlan, EngineError> {
        RulePlan::compile_typed(rule, &RuleStatics::default())
    }

    /// Compile every variant of `rule` with analysis results applied.
    /// A dead rule compiles to an empty, short-circuiting plan.
    pub fn compile_typed(rule: &Rule, statics: &RuleStatics) -> Result<RulePlan, EngineError> {
        if statics.dead {
            return Ok(RulePlan {
                base: JoinPlan { steps: Vec::new() },
                focused: Vec::new(),
                dead: true,
            });
        }
        let base = JoinPlan::compile_typed(rule, None, statics)?;
        let mut focused = Vec::new();
        for (li, lit) in rule.body.iter().enumerate() {
            if matches!(lit, Literal::Pos(_)) {
                focused.push((li, JoinPlan::compile_typed(rule, Some(li), statics)?));
            }
        }
        Ok(RulePlan { base, focused, dead: false })
    }

    /// True when analysis proved the rule dead (plan matches nothing).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The plan variant for a given focused literal (or the base plan).
    pub fn variant(&self, focus_lit: Option<usize>) -> &JoinPlan {
        match focus_lit {
            None => &self.base,
            Some(li) => {
                &self
                    .focused
                    .iter()
                    .find(|(l, _)| *l == li)
                    .expect("focus must name a positive body literal")
                    .1
            }
        }
    }
}

/// Enumerate all satisfying bindings of `rule` by executing a compiled
/// plan. Negated atoms are tested against `neg_db` when given (the
/// Gelfond–Lifschitz reduct hook), `db` otherwise. `on_match` returning
/// `false` stops the enumeration early.
pub fn for_each_match_plan(
    db: &Database,
    neg_db: Option<&Database>,
    rule: &Rule,
    plan: &RulePlan,
    focus: Option<Focus<'_>>,
    on_match: &mut dyn FnMut(&Bindings) -> Result<bool, EngineError>,
) -> Result<(), EngineError> {
    if plan.dead {
        return Ok(());
    }
    let variant = plan.variant(focus.map(|f| f.literal));
    execute(db, neg_db, rule, variant, focus, on_match)
}

/// Execute one plan variant. `variant` must have been compiled from
/// `rule` with the same focus literal as `focus`.
pub(crate) fn execute<'a>(
    db: &'a Database,
    neg_db: Option<&'a Database>,
    rule: &'a Rule,
    variant: &'a JoinPlan,
    focus: Option<Focus<'a>>,
    on_match: &'a mut dyn FnMut(&Bindings) -> Result<bool, EngineError>,
) -> Result<(), EngineError> {
    let mut exec = Exec {
        db,
        neg_db: neg_db.unwrap_or(db),
        rule,
        steps: &variant.steps,
        focus_rows: focus.map_or(RowsView::empty(), |f| f.rows),
        preselected: None,
        bindings: Bindings::new(rule.num_vars()),
        trail: Vec::new(),
        key_buf: Vec::new(),
        val_buf: Vec::new(),
        ids_bufs: vec![Vec::new(); variant.steps.len()],
        on_match,
        stopped: false,
    };
    exec.run_step(0)
}

struct Exec<'a> {
    db: &'a Database,
    neg_db: &'a Database,
    rule: &'a Rule,
    steps: &'a [PlanStep],
    focus_rows: RowsView<'a>,
    /// `(step, ids)` when a coordinator already keyed and probed the
    /// scan at `step` (see [`split_first_scan`]): the scan iterates
    /// this id chunk instead of probing again.
    preselected: Option<(usize, &'a [u32])>,
    bindings: Bindings,
    /// Variables bound since the enclosing choice point, unwound by
    /// `rollback`.
    trail: Vec<VarId>,
    /// Scratch for encoded index keys; filled and drained within one
    /// scan step.
    key_buf: Vec<u32>,
    /// Scratch for ground negation tuples.
    val_buf: Vec<Value>,
    /// Per-step id buffers: scans reuse their own buffer across the
    /// sibling iterations of the enclosing step.
    ids_bufs: Vec<Vec<u32>>,
    on_match: &'a mut dyn FnMut(&Bindings) -> Result<bool, EngineError>,
    stopped: bool,
}

impl Exec<'_> {
    fn rollback(&mut self, mark: usize) {
        for v in self.trail.drain(mark..) {
            self.bindings.unbind(v);
        }
    }

    fn run_step(&mut self, d: usize) -> Result<(), EngineError> {
        let steps = self.steps;
        let Some(step) = steps.get(d) else {
            if !(self.on_match)(&self.bindings)? {
                self.stopped = true;
            }
            return Ok(());
        };
        let rule = self.rule;
        match step {
            PlanStep::Filter { lit } => {
                let Literal::Compare { op, lhs, rhs } = &rule.body[*lit] else {
                    unreachable!("Filter step on non-comparison");
                };
                let a = eval_expr(lhs, &self.bindings)?.expect("compiled as ground");
                let b = eval_expr(rhs, &self.bindings)?.expect("compiled as ground");
                if op.eval(a.cmp(&b)) {
                    self.run_step(d + 1)?;
                }
            }
            PlanStep::Assign { lit, bind_lhs } => {
                let Literal::Compare { lhs, rhs, .. } = &rule.body[*lit] else {
                    unreachable!("Assign step on non-comparison");
                };
                let (target, source) = if *bind_lhs { (lhs, rhs) } else { (rhs, lhs) };
                let val = eval_expr(source, &self.bindings)?.expect("compiled as ground");
                let term = target.as_bare_term().expect("compiled as assignable");
                let mark = self.trail.len();
                if match_term(term, &val, &mut self.bindings, &mut self.trail) {
                    self.run_step(d + 1)?;
                }
                self.rollback(mark);
            }
            PlanStep::NegCheck { lit } => {
                let Literal::Neg(a) = &rule.body[*lit] else {
                    unreachable!("NegCheck step on non-negation");
                };
                let neg_db = self.neg_db;
                let mut vals = std::mem::take(&mut self.val_buf);
                vals.clear();
                for t in &a.args {
                    vals.push(eval_term(t, &self.bindings).expect("compiled as ground"));
                }
                let present = neg_db.relation(a.pred).contains_values(&vals);
                self.val_buf = vals;
                if !present {
                    self.run_step(d + 1)?;
                }
            }
            PlanStep::Scan { lit, key_cols, key, match_cols, focused } => {
                let Literal::Pos(a) = &rule.body[*lit] else {
                    unreachable!("Scan step on non-positive literal");
                };
                if *focused {
                    let rows = self.focus_rows;
                    if rows.arity() == a.args.len() {
                        for i in 0..rows.len() {
                            let mark = self.trail.len();
                            let ok = a.args.iter().enumerate().all(|(c, t)| {
                                match_term_id(
                                    t,
                                    rows.cell(i, c),
                                    &mut self.bindings,
                                    &mut self.trail,
                                )
                            });
                            if ok {
                                self.run_step(d + 1)?;
                            }
                            self.rollback(mark);
                            if self.stopped {
                                break;
                            }
                        }
                    }
                } else {
                    let rel = self.db.relation(a.pred);
                    let mut ids_buf = std::mem::take(&mut self.ids_bufs[d]);
                    let ids: &[u32] = match self.preselected {
                        // The coordinator keyed and probed this scan
                        // once — exactly as a serial execution would —
                        // and handed us a contiguous chunk of the
                        // selected ids; no second probe.
                        Some((step, pre)) if step == d => pre,
                        _ => {
                            debug_assert!(self.key_buf.is_empty());
                            for part in key {
                                self.key_buf.push(key_id(part, a, &self.bindings));
                            }
                            rel.select_ids_into(key_cols, &self.key_buf, &mut ids_buf);
                            self.key_buf.clear();
                            &ids_buf
                        }
                    };
                    let view = rel.rows();
                    if view.arity() == a.args.len() {
                        for &id in ids {
                            let mark = self.trail.len();
                            let ok = match_cols.iter().all(|&c| {
                                match_term_id(
                                    &a.args[c],
                                    view.cell(id as usize, c),
                                    &mut self.bindings,
                                    &mut self.trail,
                                )
                            });
                            if ok {
                                self.run_step(d + 1)?;
                            }
                            self.rollback(mark);
                            if self.stopped {
                                break;
                            }
                        }
                    }
                    ids_buf.clear();
                    self.ids_bufs[d] = ids_buf;
                }
            }
        }
        Ok(())
    }
}

/// Where a base-plan execution can fan out, computed by
/// [`split_first_scan`]: the coordinator runs the prefix steps
/// (filters, assignments, negation checks — all deterministic and
/// counter-free) up to the first index scan, performs that scan's one
/// key build and id selection exactly as a serial execution would,
/// then hands contiguous chunks of the ids to workers.
pub(crate) enum FirstScan {
    /// A prefix step failed: the rule has no matches this round (and,
    /// as in a serial run, no index was probed).
    Dead,
    /// The plan reaches a match — or a focused scan — without ever
    /// probing an index: nothing to split. Callers run the serial
    /// path, which has consumed no probe yet.
    NoScan,
    /// The first unfocused scan sits at `step` and enumerates exactly
    /// `ids` (arena positions), selected with one probe.
    Split { step: usize, ids: Vec<u32> },
}

/// Run `variant`'s prefix up to its first unfocused [`PlanStep::Scan`]
/// and perform that scan's id selection once. Negations are tested
/// against `db` itself (the seminaive/extrema case — no reduct).
pub(crate) fn split_first_scan(
    db: &Database,
    rule: &Rule,
    variant: &JoinPlan,
) -> Result<FirstScan, EngineError> {
    let mut bindings = Bindings::new(rule.num_vars());
    let mut trail = Vec::new();
    for (d, step) in variant.steps.iter().enumerate() {
        match step {
            PlanStep::Filter { lit } => {
                let Literal::Compare { op, lhs, rhs } = &rule.body[*lit] else {
                    unreachable!("Filter step on non-comparison");
                };
                let a = eval_expr(lhs, &bindings)?.expect("compiled as ground");
                let b = eval_expr(rhs, &bindings)?.expect("compiled as ground");
                if !op.eval(a.cmp(&b)) {
                    return Ok(FirstScan::Dead);
                }
            }
            PlanStep::Assign { lit, bind_lhs } => {
                let Literal::Compare { lhs, rhs, .. } = &rule.body[*lit] else {
                    unreachable!("Assign step on non-comparison");
                };
                let (target, source) = if *bind_lhs { (lhs, rhs) } else { (rhs, lhs) };
                let val = eval_expr(source, &bindings)?.expect("compiled as ground");
                let term = target.as_bare_term().expect("compiled as assignable");
                if !match_term(term, &val, &mut bindings, &mut trail) {
                    return Ok(FirstScan::Dead);
                }
            }
            PlanStep::NegCheck { lit } => {
                let Literal::Neg(a) = &rule.body[*lit] else {
                    unreachable!("NegCheck step on non-negation");
                };
                let vals: Vec<Value> = a
                    .args
                    .iter()
                    .map(|t| eval_term(t, &bindings).expect("compiled as ground"))
                    .collect();
                if db.relation(a.pred).contains_values(&vals) {
                    return Ok(FirstScan::Dead);
                }
            }
            PlanStep::Scan { lit, key_cols, key, focused, .. } => {
                if *focused {
                    return Ok(FirstScan::NoScan);
                }
                let Literal::Pos(a) = &rule.body[*lit] else {
                    unreachable!("Scan step on non-positive literal");
                };
                let key_ids: Vec<u32> = key.iter().map(|part| key_id(part, a, &bindings)).collect();
                let mut ids = Vec::new();
                db.relation(a.pred).select_ids_into(key_cols, &key_ids, &mut ids);
                return Ok(FirstScan::Split { step: d, ids });
            }
        }
    }
    Ok(FirstScan::NoScan)
}

/// Execute `variant` with the scan at `step` fed the preselected `ids`
/// chunk instead of probing (see [`split_first_scan`]). The prefix
/// steps re-run here — they are deterministic, side-effect- and
/// counter-free — so the bindings arrive at `step` exactly as in a
/// serial execution.
pub(crate) fn execute_preselected(
    db: &Database,
    rule: &Rule,
    variant: &JoinPlan,
    step: usize,
    ids: &[u32],
    on_match: &mut dyn FnMut(&Bindings) -> Result<bool, EngineError>,
) -> Result<(), EngineError> {
    let mut exec = Exec {
        db,
        neg_db: db,
        rule,
        steps: &variant.steps,
        focus_rows: RowsView::empty(),
        preselected: Some((step, ids)),
        bindings: Bindings::new(rule.num_vars()),
        trail: Vec::new(),
        key_buf: Vec::new(),
        val_buf: Vec::new(),
        ids_bufs: vec![Vec::new(); variant.steps.len()],
        on_match,
        stopped: false,
    };
    exec.run_step(0)
}

/// Enumerate the matches of `rule`'s **base** (unfocused) plan with the
/// first scan fanned out over `pool`: the coordinator performs the
/// prefix and the single id selection exactly as a serial run would,
/// workers execute contiguous id chunks folding matches into one `A`
/// per chunk, and the chunks come back in order — concatenating them
/// reproduces the serial enumeration order byte for byte.
///
/// Returns `None` when the plan has no unfocused scan to split (the
/// caller should run the serial path; no probe has been consumed), and
/// `Some(vec![])` when a prefix step already failed. A failing chunk
/// surfaces the error of the earliest chunk, which is the error a
/// serial run would hit first.
pub(crate) fn execute_base_chunked<A>(
    db: &Database,
    rule: &Rule,
    plan: &RulePlan,
    pool: &WorkerPool,
    obs: FanoutObs<'_>,
    fold: &(dyn Fn(&Bindings, &mut A) -> Result<(), EngineError> + Sync),
) -> Result<Option<Vec<A>>, EngineError>
where
    A: Default + Send,
{
    if plan.dead {
        return Ok(Some(Vec::new()));
    }
    let variant = plan.variant(None);
    let (step, ids) = match split_first_scan(db, rule, variant)? {
        FirstScan::NoScan => return Ok(None),
        FirstScan::Dead => return Ok(Some(Vec::new())),
        FirstScan::Split { step, ids } => (step, ids),
    };
    let ranges = pool.chunk_ranges(ids.len());
    let profiler = obs.profiler;
    if let Some(st) = obs.stats {
        if ranges.len() > 1 {
            for &(lo, hi) in &ranges {
                st.record_chunk((hi - lo) as u64);
            }
        }
    }
    let results =
        pool.run_stats(ranges.len(), obs.stats.filter(|_| ranges.len() > 1), |ci, worker| {
            if ranges.len() > 1 {
                // Fan-out workers collect frames only; interning stays
                // on the coordinator (debug-only determinism guard).
                gbc_storage::dictionary::forbid_intern_on_this_thread(true);
            }
            let t0 = profiler.and_then(RuleProfiler::lane_start);
            let t_chunk = obs.trace.map(|_| Instant::now());
            let (lo, hi) = ranges[ci];
            let mut acc = A::default();
            let res = execute_preselected(db, rule, variant, step, &ids[lo..hi], &mut |b| {
                fold(b, &mut acc)?;
                Ok(true)
            });
            if let (Some(p), Some(t0)) = (profiler, t0) {
                p.record_lane(worker, t0.elapsed());
            }
            if let Some(t0) = t_chunk {
                if ranges.len() > 1 {
                    obs.chunk_event(worker, (hi - lo) as u64, t0.elapsed().as_micros() as u64);
                }
            }
            res.map(|()| acc)
        });
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(Some(out))
}

/// One operand of a columnar feed comparison: either a cell of the
/// current source row or a dictionary id baked at plan-compile time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeedOperand {
    /// Read `args[col]`'s id straight from the arena row.
    Col(usize),
    /// A ground expression, evaluated and interned once when the spec
    /// is built (the feed-kernel analogue of [`KeyPart::Const`]).
    Const(u32),
}

/// One per-row check of the bindings-free feed kernel, compiled against
/// the source atom's column layout. A row of the source relation feeds
/// the queue iff every check holds; no `Bindings` frame, no decoding,
/// no per-row interning — ids compare directly because interning makes
/// id equality ⇔ value equality, and [`dictionary::cmp_ids`] reproduces
/// the decoded `Value` order that the frame-based path's
/// `op.eval(a.cmp(&b))` would see.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FeedCheck {
    /// `args[col]` repeats a variable first bound at `args[prev]`.
    ColEqCol { col: usize, prev: usize },
    /// `args[col]` is a ground term with this dictionary id.
    ColEqConst { col: usize, id: u32 },
    /// A pre-check comparison `lhs op rhs` over resolved operands.
    Cmp { op: CmpOp, lhs: FeedOperand, rhs: FeedOperand },
}

impl FeedCheck {
    /// Evaluate against one source row; `cell(col)` reads the row's id
    /// at `col`.
    #[inline]
    pub fn eval(&self, cell: &impl Fn(usize) -> u32) -> bool {
        let id_of = |o: &FeedOperand| match *o {
            FeedOperand::Col(c) => cell(c),
            FeedOperand::Const(id) => id,
        };
        match self {
            FeedCheck::ColEqCol { col, prev } => cell(*col) == cell(*prev),
            FeedCheck::ColEqConst { col, id } => cell(*col) == *id,
            FeedCheck::Cmp { op, lhs, rhs } => op.eval(dictionary::cmp_ids(id_of(lhs), id_of(rhs))),
        }
    }
}

/// Compile the source atom `args` and the rule's stage-free pre-check
/// comparisons into a columnar [`FeedCheck`] sequence, or `None` when
/// some argument or comparison needs a real binding frame (non-ground
/// compound terms, arithmetic over source variables). Ground sides are
/// evaluated and interned here, once — callers run this at plan-build
/// time on the coordinator regardless of whether the fast path is
/// enabled, so dictionary counters cannot differ between modes.
///
/// The returned checks are ordered args-first then pre-checks in body
/// order, matching the frame-based path's match-then-filter order.
pub fn columnar_feed_spec(args: &[Term], pre_checks: &[Literal]) -> Option<Vec<FeedCheck>> {
    let empty = Bindings::new(0);
    // First-occurrence column of each source variable.
    let mut first_col: Vec<(VarId, usize)> = Vec::new();
    let mut checks = Vec::new();
    for (col, t) in args.iter().enumerate() {
        match t {
            Term::Var(v) => match first_col.iter().find(|(w, _)| w == v) {
                None => first_col.push((*v, col)),
                Some(&(_, prev)) => checks.push(FeedCheck::ColEqCol { col, prev }),
            },
            t => {
                let id = dictionary::encode(&eval_term(t, &empty)?);
                checks.push(FeedCheck::ColEqConst { col, id });
            }
        }
    }
    let operand = |e: &Expr| -> Option<FeedOperand> {
        if let Some(Term::Var(v)) = e.as_bare_term() {
            let &(_, col) = first_col.iter().find(|(w, _)| w == v)?;
            return Some(FeedOperand::Col(col));
        }
        if e.vars().is_empty() {
            let v = eval_expr(e, &empty).ok()??;
            return Some(FeedOperand::Const(dictionary::encode(&v)));
        }
        None
    };
    for lit in pre_checks {
        let Literal::Compare { op, lhs, rhs } = lit else { return None };
        checks.push(FeedCheck::Cmp { op: *op, lhs: operand(lhs)?, rhs: operand(rhs)? });
    }
    Some(checks)
}

/// A lazily compiled, slot-per-rule plan store. Owners size it to
/// their rule list once and index it with the rule's position; the
/// first use of a slot compiles, later uses are counted as
/// `plan_cache_hits`.
#[derive(Clone, Debug, Default)]
pub struct PlanCache {
    slots: Vec<Option<Arc<RulePlan>>>,
}

impl PlanCache {
    /// A cache with `n` empty slots.
    pub fn new(n: usize) -> PlanCache {
        PlanCache { slots: vec![None; n] }
    }

    /// Is slot `i` already compiled? (The next `get_or_compile` on it
    /// will be a cache hit.)
    pub fn is_cached(&self, i: usize) -> bool {
        self.slots.get(i).is_some_and(Option::is_some)
    }

    /// The plan for slot `i`, compiling `rule` on first use.
    pub fn get_or_compile(
        &mut self,
        i: usize,
        rule: &Rule,
        metrics: Option<&Metrics>,
    ) -> Result<Arc<RulePlan>, EngineError> {
        self.get_or_compile_typed(i, rule, &RuleStatics::default(), metrics)
    }

    /// [`PlanCache::get_or_compile`] with analysis results applied on
    /// the compiling (first) use. Later uses return the cached plan —
    /// callers must pass the same statics for a given slot.
    pub fn get_or_compile_typed(
        &mut self,
        i: usize,
        rule: &Rule,
        statics: &RuleStatics,
        metrics: Option<&Metrics>,
    ) -> Result<Arc<RulePlan>, EngineError> {
        match &self.slots[i] {
            Some(plan) => {
                if let Some(m) = metrics {
                    m.plan_cache_hits.inc();
                }
                Ok(Arc::clone(plan))
            }
            None => {
                let plan = Arc::new(RulePlan::compile_typed(rule, statics)?);
                self.slots[i] = Some(Arc::clone(&plan));
                Ok(plan)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_rule_plain, instantiate_head};
    use gbc_ast::term::ArithOp;
    use gbc_ast::Atom;
    use gbc_storage::Row;

    fn db_edges(edges: &[(&str, &str, i64)]) -> Database {
        let mut db = Database::new();
        for &(x, y, c) in edges {
            db.insert_values("g", vec![Value::sym(x), Value::sym(y), Value::int(c)]);
        }
        db
    }

    /// The rule used across the eval tests: path(X, Z) <- g(X,Y,_), g(Y,Z,_).
    fn chain_rule() -> Rule {
        Rule::new(
            Atom::new("path", vec![Term::var(0), Term::var(2)]),
            vec![
                Literal::pos("g", vec![Term::var(0), Term::var(1), Term::var(3)]),
                Literal::pos("g", vec![Term::var(1), Term::var(2), Term::var(4)]),
            ],
            vec!["X".into(), "Y".into(), "Z".into(), "_".into(), "_2".into()],
        )
    }

    #[test]
    fn feed_spec_compiles_repeats_constants_and_prechecks() {
        // g(X, Y, X, 7) with pre-checks Y != 0, X < 9.
        let args = vec![Term::var(0), Term::var(1), Term::var(0), Term::int(7)];
        let pre = vec![
            Literal::cmp(CmpOp::Ne, Expr::Term(Term::var(1)), Expr::Term(Term::int(0))),
            Literal::cmp(CmpOp::Lt, Expr::Term(Term::var(0)), Expr::Term(Term::int(9))),
        ];
        let checks = columnar_feed_spec(&args, &pre).unwrap();
        assert_eq!(checks.len(), 4);
        assert_eq!(checks[0], FeedCheck::ColEqCol { col: 2, prev: 0 });
        assert_eq!(
            checks[1],
            FeedCheck::ColEqConst { col: 3, id: dictionary::encode(&Value::int(7)) }
        );
        // Row [3, 5, 3, 7] passes; flipping any constraint fails.
        let enc = |vals: &[i64]| -> Vec<u32> {
            vals.iter().map(|&v| dictionary::encode(&Value::int(v))).collect()
        };
        let pass = enc(&[3, 5, 3, 7]);
        assert!(checks.iter().all(|c| c.eval(&|col| pass[col])));
        let repeat_broken = enc(&[3, 5, 4, 7]);
        assert!(!checks.iter().all(|c| c.eval(&|col| repeat_broken[col])));
        let zero_y = enc(&[3, 0, 3, 7]);
        assert!(!checks.iter().all(|c| c.eval(&|col| zero_y[col])));
        let big_x = enc(&[12, 5, 12, 7]);
        assert!(!checks.iter().all(|c| c.eval(&|col| big_x[col])));
    }

    #[test]
    fn feed_spec_rejects_frames_only_shapes() {
        // Arithmetic over a source variable needs a frame.
        let args = vec![Term::var(0), Term::var(1)];
        let pre = vec![Literal::cmp(
            CmpOp::Lt,
            Expr::Binary(
                ArithOp::Add,
                Box::new(Expr::Term(Term::var(0))),
                Box::new(Expr::Term(Term::int(1))),
            ),
            Expr::Term(Term::int(9)),
        )];
        assert!(columnar_feed_spec(&args, &pre).is_none());
        // A comparison over a variable the source does not bind.
        let stray =
            vec![Literal::cmp(CmpOp::Eq, Expr::Term(Term::var(5)), Expr::Term(Term::int(0)))];
        assert!(columnar_feed_spec(&args, &stray).is_none());
        // Non-ground compound argument.
        let func_args = vec![Term::Func("f".into(), vec![Term::var(0)])];
        assert!(columnar_feed_spec(&func_args, &[]).is_none());
    }

    #[test]
    fn cached_plan_agrees_with_one_shot_eval() {
        let rule = chain_rule();
        let db = db_edges(&[("a", "b", 1), ("b", "c", 2), ("b", "d", 3)]);
        let plan = RulePlan::compile(&rule).unwrap();
        let mut via_plan = Vec::new();
        for_each_match_plan(&db, None, &rule, &plan, None, &mut |b| {
            via_plan.push(instantiate_head(&rule, b).unwrap());
            Ok(true)
        })
        .unwrap();
        assert_eq!(via_plan, eval_rule_plain(&db, &rule, None).unwrap());
    }

    #[test]
    fn focused_variant_restricts_the_occurrence() {
        let rule = chain_rule();
        let db = db_edges(&[("a", "b", 1), ("b", "c", 2), ("c", "d", 3)]);
        let plan = RulePlan::compile(&rule).unwrap();
        let mut delta = gbc_storage::ColumnBuf::new();
        delta.push_values(&[Value::sym("b"), Value::sym("c"), Value::int(2)]);
        let mut out = Vec::new();
        for (li, expect) in [(0, vec![("b", "d")]), (1, vec![("a", "c")])] {
            out.clear();
            for_each_match_plan(
                &db,
                None,
                &rule,
                &plan,
                Some(Focus { literal: li, rows: delta.view() }),
                &mut |b| {
                    out.push(instantiate_head(&rule, b).unwrap());
                    Ok(true)
                },
            )
            .unwrap();
            let expect: Vec<Row> =
                expect.iter().map(|&(x, z)| Row::new(vec![Value::sym(x), Value::sym(z)])).collect();
            assert_eq!(out, expect, "focus on literal {li}");
        }
    }

    #[test]
    fn constant_prefilters_are_baked_into_the_key() {
        // p(X) <- g(a, X, 1).  Both constants land in the index key.
        let rule = Rule::new(
            Atom::new("p", vec![Term::var(0)]),
            vec![Literal::pos("g", vec![Term::sym("a"), Term::var(0), Term::int(1)])],
            vec!["X".into()],
        );
        let db = db_edges(&[("a", "b", 1), ("a", "c", 2), ("b", "d", 1)]);
        let plan = RulePlan::compile(&rule).unwrap();
        let mut out = Vec::new();
        for_each_match_plan(&db, None, &rule, &plan, None, &mut |b| {
            out.push(instantiate_head(&rule, b).unwrap());
            Ok(true)
        })
        .unwrap();
        assert_eq!(out, vec![Row::new(vec![Value::sym("b")])]);
    }

    #[test]
    fn compile_rejects_unexpanded_next_and_stuck_rules() {
        let next_rule = Rule::new(
            Atom::new("p", vec![Term::var(0)]),
            vec![Literal::Next { var: VarId(0) }],
            vec!["I".into()],
        );
        assert!(matches!(RulePlan::compile(&next_rule), Err(EngineError::UnexpandedNext { .. })));
        // X < Y with neither bound can never be scheduled.
        let stuck = Rule::new(
            Atom::new("p", vec![Term::var(0)]),
            vec![Literal::cmp(CmpOp::Lt, Expr::var(0), Expr::var(1))],
            vec!["X".into(), "Y".into()],
        );
        assert!(matches!(RulePlan::compile(&stuck), Err(EngineError::NoEvaluableLiteral { .. })));
    }

    #[test]
    fn plan_cache_counts_hits() {
        let m = Metrics::new();
        let rule = chain_rule();
        let mut cache = PlanCache::new(1);
        cache.get_or_compile(0, &rule, Some(&m)).unwrap(); // compile
        cache.get_or_compile(0, &rule, Some(&m)).unwrap(); // hit
        cache.get_or_compile(0, &rule, Some(&m)).unwrap(); // hit
        assert_eq!(m.snapshot().plan_cache_hits, 2);
    }

    #[test]
    fn chunked_base_execution_matches_serial_order() {
        let rule = chain_rule();
        let mut db = Database::new();
        for i in 0..300i64 {
            db.insert_values(
                "g",
                vec![Value::int(i % 17), Value::int((i + 1) % 17), Value::int(i)],
            );
        }
        let plan = RulePlan::compile(&rule).unwrap();
        let mut serial = Vec::new();
        for_each_match_plan(&db, None, &rule, &plan, None, &mut |b| {
            serial.push(instantiate_head(&rule, b).unwrap());
            Ok(true)
        })
        .unwrap();
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let chunks = execute_base_chunked::<Vec<Row>>(
                &db,
                &rule,
                &plan,
                &pool,
                FanoutObs::default(),
                &|b, acc| {
                    acc.push(instantiate_head(&rule, b)?);
                    Ok(())
                },
            )
            .unwrap()
            .expect("chain rule starts with a scan");
            let merged: Vec<Row> = chunks.into_iter().flatten().collect();
            assert_eq!(merged, serial, "threads {threads}");
        }
    }

    #[test]
    fn split_reports_dead_and_noscan_plans() {
        let db = db_edges(&[("a", "b", 1)]);
        // 1 < 0 is a ground filter scheduled before any scan: dead.
        let dead = Rule::new(
            Atom::new("p", vec![Term::var(0)]),
            vec![
                Literal::pos("g", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::cmp(CmpOp::Lt, Expr::int(1), Expr::int(0)),
            ],
            vec!["X".into(), "Y".into(), "C".into()],
        );
        let plan = RulePlan::compile(&dead).unwrap();
        assert!(matches!(
            split_first_scan(&db, &dead, plan.variant(None)).unwrap(),
            FirstScan::Dead
        ));
        let pool = WorkerPool::new(4);
        let chunks = execute_base_chunked::<Vec<Row>>(
            &db,
            &dead,
            &plan,
            &pool,
            FanoutObs::default(),
            &|b, acc| {
                acc.push(instantiate_head(&dead, b)?);
                Ok(())
            },
        )
        .unwrap()
        .expect("dead plans still split");
        assert!(chunks.is_empty());
        // A body of one assignment never scans.
        let noscan = Rule::new(
            Atom::new("p", vec![Term::var(0)]),
            vec![Literal::cmp(CmpOp::Eq, Expr::var(0), Expr::int(7))],
            vec!["X".into()],
        );
        let plan = RulePlan::compile(&noscan).unwrap();
        assert!(matches!(
            split_first_scan(&db, &noscan, plan.variant(None)).unwrap(),
            FirstScan::NoScan
        ));
    }

    #[test]
    fn dead_statics_short_circuit_matching() {
        let rule = chain_rule();
        let db = db_edges(&[("a", "b", 1), ("b", "c", 2)]);
        let plan =
            RulePlan::compile_typed(&rule, &RuleStatics { dead: true, const_true_lits: vec![] })
                .unwrap();
        assert!(plan.is_dead());
        let mut hits = 0;
        for_each_match_plan(&db, None, &rule, &plan, None, &mut |_| {
            hits += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(hits, 0);
    }

    #[test]
    fn const_true_literals_are_folded_out_without_changing_matches() {
        // path(X, Z) <- g(X,Y,_), g(Y,Z,_), 1 < 2.
        let mut rule = chain_rule();
        rule.body.push(Literal::cmp(CmpOp::Lt, Expr::int(1), Expr::int(2)));
        let db = db_edges(&[("a", "b", 1), ("b", "c", 2), ("b", "d", 3)]);
        let untyped = RulePlan::compile(&rule).unwrap();
        let typed =
            RulePlan::compile_typed(&rule, &RuleStatics { dead: false, const_true_lits: vec![2] })
                .unwrap();
        assert!(typed.variant(None).steps.len() < untyped.variant(None).steps.len());
        let collect = |plan: &RulePlan| {
            let mut out = Vec::new();
            for_each_match_plan(&db, None, &rule, plan, None, &mut |b| {
                out.push(instantiate_head(&rule, b).unwrap());
                Ok(true)
            })
            .unwrap();
            out
        };
        assert_eq!(collect(&typed), collect(&untyped));
    }

    #[test]
    fn assignment_step_errors_surface_at_execution() {
        // p(Y) <- q(X), Y = X / 0 — the division errors once X is bound.
        let rule = Rule::new(
            Atom::new("p", vec![Term::var(1)]),
            vec![
                Literal::pos("q", vec![Term::var(0)]),
                Literal::cmp(
                    CmpOp::Eq,
                    Expr::var(1),
                    Expr::binary(ArithOp::Div, Expr::var(0), Expr::int(0)),
                ),
            ],
            vec!["X".into(), "Y".into()],
        );
        let mut db = Database::new();
        db.insert_values("q", vec![Value::int(4)]);
        let plan = RulePlan::compile(&rule).unwrap();
        let r = for_each_match_plan(&db, None, &rule, &plan, None, &mut |_| Ok(true));
        assert_eq!(r, Err(EngineError::DivideByZero));
    }
}
