//! Whole-program column type inference.
//!
//! An abstract interpretation over a small lattice of column types,
//! propagated from facts and rule heads to fixpoint. Each predicate
//! column gets a [`ColType`]: a [`Base`] shape (`Int`, `Sym`, `Str`, a
//! functor shape, `Any` = ⊤ or `Never` = ⊥) plus a nullability bit for
//! the paper's pervasive `nil` sentinel (exit facts like
//! `prm(nil, 0, 0, 0)`).
//!
//! The results license engine specializations that are unsound without
//! them: the decode-free `Int` cost heap in `gbc-storage::rql` is only
//! used when the extremum cost column is proved `int` (non-nullable),
//! because within a pure-`Int` column a raw `i64` compare coincides
//! with the dictionary's order over ids. The same pass anchors the
//! GBC026/GBC029/GBC030 diagnostics.
//!
//! Two entry points:
//! - [`infer`] — static: only in-program facts seed the lattice;
//!   referenced-but-undefined predicates are EDB inputs and type `any`.
//! - [`infer_seeded`] with [`scan_seeds`] — runtime: the executor seeds
//!   every predicate from the actual loaded [`Database`] columns, so
//!   programs whose facts arrive via the EDB (the bench harness, the
//!   serve path) still get the `Int` heap when the data is integral.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use gbc_ast::literal::{CmpOp, Literal};
use gbc_ast::term::{Expr, Term, VarId};
use gbc_ast::value::Value;
use gbc_ast::{Program, Rule, Symbol};
use gbc_storage::{dictionary, Database};

/// The base shape of a column type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Base {
    /// ⊥ — no value observed (or only `nil`, when paired with
    /// `nullable`).
    Never,
    /// 64-bit integers: costs, grades, stage numbers.
    Int,
    /// Symbolic constants.
    Sym,
    /// String literals.
    Str,
    /// Ground functor terms with this symbol and arity, e.g. the
    /// Huffman constructor `t/2`.
    Func(Symbol, usize),
    /// ⊤ — mixed or unknown.
    Any,
}

impl Base {
    /// Concrete bases are the ones between ⊥ and ⊤.
    pub fn is_concrete(self) -> bool {
        !matches!(self, Base::Never | Base::Any)
    }
}

/// A column type: base shape plus whether `nil` may also appear.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ColType {
    /// Shape of the non-`nil` values.
    pub base: Base,
    /// True when `nil` may occur in the column.
    pub nullable: bool,
}

impl ColType {
    /// ⊥: nothing flows here.
    pub const NEVER: ColType = ColType { base: Base::Never, nullable: false };
    /// ⊤: anything may flow here.
    pub const ANY: ColType = ColType { base: Base::Any, nullable: true };
    /// Non-nullable integer — the type that licenses the `Int` heap.
    pub const INT: ColType = ColType { base: Base::Int, nullable: false };

    /// The type of a single ground value.
    pub fn of_value(v: &Value) -> ColType {
        match v {
            Value::Nil => ColType { base: Base::Never, nullable: true },
            Value::Int(_) => ColType::INT,
            Value::Sym(_) => ColType { base: Base::Sym, nullable: false },
            Value::Str(_) => ColType { base: Base::Str, nullable: false },
            Value::Func(f, args) => ColType { base: Base::Func(*f, args.len()), nullable: false },
        }
    }

    /// Least upper bound (used when rule heads flow into columns).
    pub fn join(self, other: ColType) -> ColType {
        let base = match (self.base, other.base) {
            (Base::Never, b) | (b, Base::Never) => b,
            (a, b) if a == b => a,
            _ => Base::Any,
        };
        ColType { base, nullable: self.nullable || other.nullable }
    }

    /// Greatest lower bound (used when a variable occurs in several
    /// body positions: it can only bind values in the intersection).
    pub fn meet(self, other: ColType) -> ColType {
        let base = match (self.base, other.base) {
            (Base::Any, b) | (b, Base::Any) => b,
            (a, b) if a == b => a,
            _ => Base::Never,
        };
        ColType { base, nullable: self.nullable && other.nullable }
    }

    /// True when the column is proved pure non-nullable `Int`.
    pub fn is_int(self) -> bool {
        self.base == Base::Int && !self.nullable
    }
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.base {
            Base::Never if self.nullable => return f.write_str("nil"),
            Base::Never => return f.write_str("never"),
            Base::Int => f.write_str("int")?,
            Base::Sym => f.write_str("sym")?,
            Base::Str => f.write_str("str")?,
            Base::Func(name, arity) => write!(f, "functor:{name}/{arity}")?,
            Base::Any => return f.write_str("any"),
        }
        if self.nullable {
            f.write_str("?")?;
        }
        Ok(())
    }
}

/// A type conflict at an interpreted position (anchors GBC026).
#[derive(Clone, Debug)]
pub struct TypeConflict {
    /// Index of the offending rule in `program.rules`.
    pub rule: usize,
    /// Body literal index, when the conflict anchors to one.
    pub lit: Option<usize>,
    /// The variable involved, when the conflict anchors to one.
    pub var: Option<VarId>,
    /// Human-readable description.
    pub message: String,
}

/// Result of whole-program type inference.
#[derive(Clone, Debug, Default)]
pub struct TypeInfo {
    /// Inferred column types, keyed by predicate, for every predicate
    /// that can hold facts (seeded, fact-defined, or rule-defined).
    pub cols: BTreeMap<Symbol, Vec<ColType>>,
    /// Referenced predicates with no defining rule and no seed: EDB
    /// inputs supplied at run time; their columns are `any`.
    pub external: Vec<Symbol>,
    /// Conflicts at interpreted positions (comparisons, arithmetic).
    pub conflicts: Vec<TypeConflict>,
}

impl TypeInfo {
    /// True when `pred`'s column `col` is proved pure non-nullable `Int`.
    pub fn col_is_int(&self, pred: Symbol, col: usize) -> bool {
        self.cols.get(&pred).and_then(|c| c.get(col)).is_some_and(|t| t.is_int())
    }

    /// The inferred type of a column, `ANY` when unknown.
    pub fn col_type(&self, pred: Symbol, col: usize) -> ColType {
        self.cols.get(&pred).and_then(|c| c.get(col)).copied().unwrap_or(ColType::ANY)
    }
}

/// Static inference: seeds come only from in-program facts.
pub fn infer(program: &Program) -> TypeInfo {
    infer_seeded(program, &BTreeMap::new())
}

/// Inference with external seeds (the runtime path: seeds scanned from
/// the loaded EDB with [`scan_seeds`]). Seeded types are joined with
/// whatever the rules derive on top.
pub fn infer_seeded(program: &Program, seeds: &BTreeMap<Symbol, Vec<ColType>>) -> TypeInfo {
    let defined: BTreeSet<Symbol> = program.rules.iter().map(|r| r.head.pred).collect();
    let mut referenced: BTreeSet<Symbol> = BTreeSet::new();
    for rule in &program.rules {
        for lit in &rule.body {
            if let Literal::Pos(a) | Literal::Neg(a) = lit {
                referenced.insert(a.pred);
            }
        }
    }
    let external: Vec<Symbol> = referenced
        .iter()
        .filter(|p| !defined.contains(p) && !seeds.contains_key(p))
        .copied()
        .collect();

    let mut cols: BTreeMap<Symbol, Vec<ColType>> = seeds.clone();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let Some(env) = rule_env(rule, &cols, &defined, true) else { continue };
            let arity = rule.head.arity();
            let entry = cols.entry(rule.head.pred).or_insert_with(|| vec![ColType::NEVER; arity]);
            if entry.len() < arity {
                entry.resize(arity, ColType::NEVER);
            }
            for (i, t) in rule.head.args.iter().enumerate() {
                let ty = type_of_term(t, &env);
                let joined = entry[i].join(ty);
                if joined != entry[i] {
                    entry[i] = joined;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut conflicts = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        check_rule(ri, rule, &cols, &defined, &mut conflicts);
    }

    TypeInfo { cols, external, conflicts }
}

/// Seed column types from the actual contents of a database: the join
/// of the value types in each column of each non-empty relation.
pub fn scan_seeds(db: &Database) -> BTreeMap<Symbol, Vec<ColType>> {
    let mut seeds = BTreeMap::new();
    for pred in db.predicates() {
        let rows = db.relation(pred).rows();
        if rows.is_empty() {
            continue;
        }
        let mut tys = vec![ColType::NEVER; rows.arity()];
        for (c, ty) in tys.iter_mut().enumerate() {
            let mut last = u32::MAX;
            for r in 0..rows.len() {
                let id = rows.cell(r, c);
                if id == last {
                    continue; // columnar data is often runs of one id
                }
                last = id;
                *ty = ty.join(ColType::of_value(dictionary::decode_ref(id)));
                if *ty == ColType::ANY {
                    break;
                }
            }
        }
        seeds.insert(pred, tys);
    }
    seeds
}

/// The per-rule variable environment under the current column map:
/// the meet over all positive-atom occurrences, `next(I)` (stage
/// variables are integers by construction), `=`-assignments, and
/// arithmetic operands. Returns `None` while some positive body atom
/// reads a defined predicate that has derived no facts yet — such a
/// rule contributes nothing this round (and never will, if the
/// predicate is provably empty).
fn rule_env(
    rule: &Rule,
    cols: &BTreeMap<Symbol, Vec<ColType>>,
    defined: &BTreeSet<Symbol>,
    refine: bool,
) -> Option<Vec<ColType>> {
    let mut env = vec![ColType::ANY; rule.num_vars()];
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) => {
                let Some(tys) = cols.get(&a.pred) else {
                    if defined.contains(&a.pred) {
                        return None; // defined but empty so far
                    }
                    continue; // external: columns are `any`
                };
                for (i, t) in a.args.iter().enumerate() {
                    if let Term::Var(v) = t {
                        let col = tys.get(i).copied().unwrap_or(ColType::ANY);
                        env[v.index()] = env[v.index()].meet(col);
                    }
                }
            }
            Literal::Next { var } => {
                env[var.index()] = env[var.index()].meet(ColType::INT);
            }
            _ => {}
        }
    }
    if !refine {
        return Some(env);
    }
    // `=`-assignments and arithmetic refine types; iterate because
    // assignment chains (`I = J, J = K + 1`) resolve in any order. The
    // lattice is tiny, so this converges in a handful of rounds.
    loop {
        let mut changed = false;
        for lit in &rule.body {
            let Literal::Compare { op, lhs, rhs } = lit else { continue };
            for e in [lhs, rhs] {
                if e.has_arith() {
                    for v in e.vars() {
                        changed |= meet_env(&mut env, v, ColType::INT);
                    }
                }
            }
            if *op == CmpOp::Eq {
                if let Some(Term::Var(v)) = lhs.as_bare_term() {
                    let ty = type_of_expr(rhs, &env);
                    changed |= meet_env(&mut env, *v, ty);
                }
                if let Some(Term::Var(v)) = rhs.as_bare_term() {
                    let ty = type_of_expr(lhs, &env);
                    changed |= meet_env(&mut env, *v, ty);
                }
            }
        }
        if !changed {
            break;
        }
    }
    Some(env)
}

fn meet_env(env: &mut [ColType], v: VarId, ty: ColType) -> bool {
    let met = env[v.index()].meet(ty);
    if met != env[v.index()] {
        env[v.index()] = met;
        true
    } else {
        false
    }
}

fn type_of_term(t: &Term, env: &[ColType]) -> ColType {
    match t {
        Term::Var(v) => env.get(v.index()).copied().unwrap_or(ColType::ANY),
        Term::Const(v) => ColType::of_value(v),
        Term::Func(f, args) => ColType { base: Base::Func(*f, args.len()), nullable: false },
    }
}

fn type_of_expr(e: &Expr, env: &[ColType]) -> ColType {
    match e {
        Expr::Term(t) => type_of_term(t, env),
        // Arithmetic always produces an integer.
        Expr::Binary(..) | Expr::Neg(_) => ColType::INT,
    }
}

/// Post-fixpoint conflict detection for one rule.
///
/// Checks run against the *unrefined* environment (atoms + `next`
/// only): the refined one melts a conflicting variable to ⊥ before the
/// offending constraint can be inspected. Only concrete-vs-concrete
/// mismatches are reported — `any` (unknown EDB data) and `nil`
/// columns never warn.
fn check_rule(
    ri: usize,
    rule: &Rule,
    cols: &BTreeMap<Symbol, Vec<ColType>>,
    defined: &BTreeSet<Symbol>,
    out: &mut Vec<TypeConflict>,
) {
    let Some(env) = rule_env(rule, cols, defined, false) else { return };
    for (li, lit) in rule.body.iter().enumerate() {
        let Literal::Compare { op, lhs, rhs } = lit else { continue };
        let mut reported = false;
        for e in [lhs, rhs] {
            if !e.has_arith() {
                continue;
            }
            for v in e.vars() {
                let base = env[v.index()].base;
                if base.is_concrete() && base != Base::Int {
                    out.push(TypeConflict {
                        rule: ri,
                        lit: Some(li),
                        var: Some(v),
                        message: format!(
                            "`{}` is used in arithmetic but has type `{}`",
                            rule.var_name(v),
                            env[v.index()],
                        ),
                    });
                    reported = true;
                }
            }
        }
        if reported {
            continue;
        }
        let lt = type_of_expr(lhs, &env);
        let rt = type_of_expr(rhs, &env);
        if lt.base.is_concrete() && rt.base.is_concrete() && lt.base != rt.base {
            out.push(TypeConflict {
                rule: ri,
                lit: Some(li),
                var: None,
                message: format!(
                    "comparison between incompatible types `{lt}` {} `{rt}`",
                    cmp_symbol(*op),
                ),
            });
        }
    }
}

fn cmp_symbol(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

/// The refined environment for one rule under the final column map —
/// used by lints that inspect head terms (GBC029) and extremum costs
/// (GBC030). `None` when the rule reads a provably-empty predicate.
pub fn final_env(program: &Program, info: &TypeInfo, rule: &Rule) -> Option<Vec<ColType>> {
    let defined: BTreeSet<Symbol> = program.rules.iter().map(|r| r.head.pred).collect();
    rule_env(rule, &info.cols, &defined, true)
}

/// The refined type of a head term under [`final_env`].
pub fn head_term_type(env: &[ColType], term: &Term) -> ColType {
    type_of_term(term, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_parser::parse_program;

    fn types_of(src: &str, pred: &str) -> Vec<String> {
        let p = parse_program(src).expect("parse");
        let info = infer(&p);
        info.cols
            .get(&Symbol::intern(pred))
            .map(|tys| tys.iter().map(|t| t.to_string()).collect())
            .unwrap_or_default()
    }

    #[test]
    fn fact_types_seed_the_lattice() {
        let src = "g(a, b, 4). g(b, c, 9).\n";
        assert_eq!(types_of(src, "g"), vec!["sym", "sym", "int"]);
    }

    #[test]
    fn rule_heads_propagate_to_fixpoint() {
        let src = "e(1, 2). e(2, 3).\ntc(X, Y) <- e(X, Y).\ntc(X, Z) <- tc(X, Y), e(Y, Z).\n";
        assert_eq!(types_of(src, "tc"), vec!["int", "int"]);
    }

    #[test]
    fn nil_makes_a_column_nullable() {
        let src = "p(nil, 0).\np(X, C) <- q(X, C).\nq(a, 3).\n";
        assert_eq!(types_of(src, "p"), vec!["sym?", "int"]);
    }

    #[test]
    fn mixed_shapes_join_to_any() {
        let src = "h(a, 1).\nh(t(X, Y), 2) <- h(X, C), h(Y, D).\n";
        assert_eq!(types_of(src, "h"), vec!["any", "int"]);
    }

    #[test]
    fn external_predicates_are_any() {
        let src = "p(X) <- q(X).\n";
        let prog = parse_program(src).expect("parse");
        let info = infer(&prog);
        assert_eq!(info.external, vec![Symbol::intern("q")]);
        assert_eq!(types_of(src, "p"), vec!["any"]);
    }

    #[test]
    fn arithmetic_forces_int() {
        let src = "p(1).\nq(Y) <- p(X), Y = X + 1.\n";
        let prog = parse_program(src).expect("parse");
        let info = infer(&prog);
        assert!(info.col_is_int(Symbol::intern("q"), 0));
        assert!(info.conflicts.is_empty());
    }

    #[test]
    fn arithmetic_over_symbols_conflicts() {
        let src = "p(a).\nq(Y) <- p(X), Y = X + 1.\n";
        let prog = parse_program(src).expect("parse");
        let info = infer(&prog);
        assert_eq!(info.conflicts.len(), 1, "{:?}", info.conflicts);
        assert!(info.conflicts[0].message.contains("arithmetic"), "{:?}", info.conflicts);
    }

    #[test]
    fn comparison_shape_mismatch_conflicts() {
        let src = "p(a).\nq(X) <- p(X), X < 3.\n";
        let prog = parse_program(src).expect("parse");
        let info = infer(&prog);
        assert_eq!(info.conflicts.len(), 1, "{:?}", info.conflicts);
        assert!(info.conflicts[0].message.contains("incompatible"), "{:?}", info.conflicts);
    }

    #[test]
    fn empty_defined_predicates_do_not_poison() {
        // `q` is defined but provably empty: the rule reading it
        // contributes nothing, and `p` keeps its fact-derived type.
        let src = "p(1).\nq(X) <- q(X).\np(X) <- q(X).\n";
        assert_eq!(types_of(src, "p"), vec!["int"]);
    }
}
