//! Property tests: generated programs survive the print → parse cycle.
//!
//! Seeded-loop style: random cases come from the in-tree deterministic
//! PRNG, so every failure reproduces exactly.

use gbc_ast::term::Expr;
use gbc_ast::{Atom, CmpOp, Literal, Program, Rule, Term};
use gbc_telemetry::rng::Rng;

/// Variable names V0..V5, integers, symbols from a small pool.
fn random_term(rng: &mut Rng) -> Term {
    match rng.below(3) {
        0 => Term::var(rng.below(6) as u32),
        1 => Term::int(rng.range_i64(i32::MIN as i64, i32::MAX as i64)),
        _ => Term::sym(["a", "b", "nodeX"][rng.below_usize(3)]),
    }
}

fn random_terms(rng: &mut Rng, max: usize) -> Vec<Term> {
    (0..rng.below_usize(max)).map(|_| random_term(rng)).collect()
}

fn random_atom(rng: &mut Rng) -> Atom {
    let name = ["p", "q", "g", "edge"][rng.below_usize(4)];
    Atom::new(name, random_terms(rng, 4))
}

fn random_literal(rng: &mut Rng) -> Literal {
    match rng.below(5) {
        0 => Literal::Pos(random_atom(rng)),
        1 => Literal::Neg(random_atom(rng)),
        2 => Literal::Compare {
            op: CmpOp::Lt,
            lhs: Expr::Term(random_term(rng)),
            rhs: Expr::Term(random_term(rng)),
        },
        3 => Literal::Choice { left: random_terms(rng, 3), right: random_terms(rng, 3) },
        _ => Literal::Least { cost: random_term(rng), group: random_terms(rng, 2) },
    }
}

fn random_rule(rng: &mut Rng) -> Rule {
    let head = random_atom(rng);
    let body = (0..rng.below_usize(5)).map(|_| random_literal(rng)).collect();
    Rule::new(head, body, (0..6).map(|i| format!("V{i}")).collect())
}

/// The printed form of any rule reparses, and reprinting the parse is a
/// fixpoint. (Rules here need not be safe — printing is purely
/// syntactic.)
#[test]
fn print_parse_is_a_fixpoint() {
    let mut rng = Rng::new(0x5EED_000B);
    for case in 0..256 {
        let n_rules = 1 + rng.below_usize(4);
        let rules: Vec<Rule> = (0..n_rules).map(|_| random_rule(&mut rng)).collect();
        let p1 = Program::from_rules(rules);
        let s1 = p1.to_string();
        let p2 = gbc_parser::parse_program(&s1)
            .unwrap_or_else(|e| panic!("printed program must reparse (case {case}): {e}\n{s1}"));
        let s2 = p2.to_string();
        assert_eq!(s1, s2, "case {case}");
    }
}
