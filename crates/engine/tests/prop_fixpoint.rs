//! Property tests for the evaluation engine: seminaive agrees with
//! naive evaluation, and choice models always satisfy their functional
//! dependencies.
//!
//! Seeded-loop style: random cases come from the in-tree deterministic
//! PRNG, so every failure reproduces exactly.

use gbc_ast::{Program, Value};
use gbc_engine::chooser::SeededRandom;
use gbc_engine::eval::eval_rule_plain;
use gbc_engine::seminaive::Seminaive;
use gbc_engine::ChoiceFixpoint;
use gbc_storage::Database;
use gbc_telemetry::rng::Rng;

fn tc_program() -> Program {
    gbc_parser::parse_program(
        "tc(X, Y) <- e(X, Y).
         tc(X, Z) <- tc(X, Y), e(Y, Z).",
    )
    .unwrap()
}

fn edge_db(edges: &[(u8, u8)]) -> Database {
    let mut db = Database::new();
    for &(a, b) in edges {
        db.insert_values("e", vec![Value::int(a.into()), Value::int(b.into())]);
    }
    db
}

/// Naive saturation reference.
fn naive(db: &mut Database, program: &Program) {
    loop {
        let mut grew = false;
        for rule in program.proper_rules() {
            for r in eval_rule_plain(db, rule, None).unwrap() {
                grew |= db.insert(rule.head.pred, r);
            }
        }
        if !grew {
            break;
        }
    }
}

/// Seminaive and naive evaluation compute identical models on
/// arbitrary edge relations (cycles included).
#[test]
fn seminaive_equals_naive() {
    let mut rng = Rng::new(0x5EED_0003);
    for case in 0..64 {
        let n_edges = rng.below_usize(40);
        let edges: Vec<(u8, u8)> =
            (0..n_edges).map(|_| (rng.below(12) as u8, rng.below(12) as u8)).collect();

        let program = tc_program();
        let mut a = edge_db(&edges);
        Seminaive::new(program.rules.clone()).saturate(&mut a).unwrap();
        let mut b = edge_db(&edges);
        naive(&mut b, &program);
        assert_eq!(a.canonical_form(), b.canonical_form(), "case {case}");
    }
}

/// Every choice model of the assignment program satisfies both
/// functional dependencies, regardless of the chooser's seed, and is
/// maximal (no takes-pair can be added without violating an FD).
#[test]
fn choice_models_satisfy_and_saturate_fds() {
    let mut rng = Rng::new(0x5EED_0004);
    for case in 0..64 {
        let n_pairs = 1 + rng.below_usize(17);
        let pairs: Vec<(u8, u8)> =
            (0..n_pairs).map(|_| (rng.below(6) as u8, rng.below(6) as u8)).collect();
        let seed = rng.below(500);

        let program =
            gbc_parser::parse_program("a(S, C) <- takes(S, C), choice(C, S), choice(S, C).")
                .unwrap();
        let mut edb = Database::new();
        for &(s, c) in &pairs {
            edb.insert_values("takes", vec![Value::int(s.into()), Value::int(c.into())]);
        }
        let mut fixpoint = ChoiceFixpoint::new(&program, &edb).unwrap();
        let m = fixpoint.run(&mut SeededRandom::new(seed)).unwrap();
        let a = gbc_ast::Symbol::intern("a");
        let picked = m.facts_of(a);

        // FDs: course → student and student → course.
        let mut by_c = std::collections::HashMap::new();
        let mut by_s = std::collections::HashMap::new();
        for r in &picked {
            assert!(by_s.insert(r[0].clone(), r[1].clone()).is_none(), "case {case}");
            assert!(by_c.insert(r[1].clone(), r[0].clone()).is_none(), "case {case}");
        }
        // Maximality: every unpicked takes-pair conflicts with a pick.
        for &(s, c) in &pairs {
            let (sv, cv) = (Value::int(s.into()), Value::int(c.into()));
            let picked_here = picked.iter().any(|r| r[0] == sv && r[1] == cv);
            if !picked_here {
                assert!(
                    by_s.contains_key(&sv) || by_c.contains_key(&cv),
                    "unpicked pair ({s},{c}) must be blocked by an FD (case {case})"
                );
            }
        }
    }
}
