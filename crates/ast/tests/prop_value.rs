//! Property tests for the value order and the term model — the total
//! order on [`Value`] underpins every priority queue in the system, so
//! its lawfulness is load-bearing.

use gbc_ast::{Symbol, Term, Value};
use proptest::prelude::*;

/// A strategy over values, including nested functor terms.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Nil),
        any::<i64>().prop_map(Value::Int),
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| Value::sym(&s)),
        "[ -~]{0,8}".prop_map(|s| Value::str(&s)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        (prop_oneof![Just("t"), Just("f"), Just("pair")], prop::collection::vec(inner, 0..3))
            .prop_map(|(name, args)| Value::func(name, args))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Total order laws: antisymmetry and transitivity via sort
    /// stability, reflexivity of equality.
    #[test]
    fn ordering_is_total_and_consistent(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => {
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(b.cmp(&a), Ordering::Equal);
            }
        }
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Reflexivity.
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    /// Equal values hash equally.
    #[test]
    fn eq_implies_hash_eq(a in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let b = a.clone();
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        prop_assert_eq!(ha.finish(), hb.finish());
    }

    /// Ground terms convert to values and back structurally: a ground
    /// `Term` built from a `Value` evaluates to that value.
    #[test]
    fn ground_term_value_round_trip(v in value_strategy()) {
        fn to_term(v: &Value) -> Term {
            match v {
                Value::Func(f, args) => Term::Func(*f, args.iter().map(to_term).collect()),
                other => Term::Const(other.clone()),
            }
        }
        let t = to_term(&v);
        prop_assert!(t.is_ground());
        prop_assert_eq!(t.as_value(), Some(v));
    }

    /// Symbol interning round-trips arbitrary identifiers.
    #[test]
    fn symbol_round_trip(s in "[a-z][a-z0-9_]{0,16}") {
        let sym = Symbol::intern(&s);
        prop_assert_eq!(sym.as_str(), s.as_str());
        prop_assert_eq!(Symbol::intern(&s), sym);
    }
}
