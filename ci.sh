#!/usr/bin/env bash
# CI entry point — everything runs offline against the vendored/in-tree
# dependency set (the workspace has zero registry dependencies).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== tests =="
cargo test -q --offline --workspace

echo "== lints =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== format =="
cargo fmt --all --check

echo "== smoke: gbc run with observability =="
stats_json="$(mktemp)"
diag_json="$(mktemp)"
serve_log="$(mktemp)"
serve_pid=""
cleanup() {
    rm -f "$stats_json" "$diag_json" "$serve_log"
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
}
trap cleanup EXIT
./target/release/gbc run programs/prim.dl programs/graph_small.dl \
    --stats --stats-json "$stats_json" >/dev/null
grep -q '"gamma_steps": 5' "$stats_json" || {
    echo "unexpected gamma_steps in $stats_json" >&2
    exit 1
}

echo "== smoke: gbc run --profile and gbc explain over shipped programs =="
# Every shipped program must survive a profiled run (the per-rule table
# renders with an attribution line) and answer a provenance query over
# its primary output predicate. Entries pair the README's file groups
# with a wildcard query atom.
obs_groups=(
    "programs/prim.dl programs/graph_small.dl|prm(_, _, _, _)"
    "programs/spanning.dl programs/graph_small.dl|st(_, _, _, _)"
    "programs/kruskal.dl programs/graph_small.dl|kruskal(_, _, _, _)"
    "programs/sort.dl|sp(_, _, _)"
    "programs/matching.dl|matching(_, _, _, _)"
    "programs/huffman.dl|pick(_, _, _)"
    "programs/scheduling.dl|sched(_, _, _)"
    "programs/tsp.dl|tsp_chain(_, _, _, _)"
    "programs/assignment.dl|a_st(_, _, _)"
)
for entry in "${obs_groups[@]}"; do
    files="${entry%%|*}"
    atom="${entry##*|}"
    # shellcheck disable=SC2086
    ./target/release/gbc run $files --profile >/dev/null 2>"$diag_json" || {
        echo "gbc run --profile failed for: $files" >&2
        exit 1
    }
    grep -q 'attributed' "$diag_json" || {
        echo "profile table missing attribution line for: $files" >&2
        exit 1
    }
    # shellcheck disable=SC2086
    ./target/release/gbc explain $files -- "$atom" >/dev/null || {
        echo "gbc explain failed for: $files ($atom)" >&2
        exit 1
    }
done

echo "== check: shipped programs are diagnostic-clean =="
# Every shipped program must pass the full static pipeline with zero
# diagnostics, warnings included. Programs and their EDB files are
# grouped the way the README runs them (new_g is defined in both
# prim.dl and spanning.dl, so those check separately).
check_groups=(
    "programs/prim.dl programs/graph_small.dl"
    "programs/spanning.dl programs/graph_small.dl"
    "programs/sort.dl"
    "programs/matching.dl"
    "programs/huffman.dl"
    "programs/scheduling.dl"
    "programs/tsp.dl"
    "programs/assignment.dl"
)
for group in "${check_groups[@]}"; do
    # shellcheck disable=SC2086
    ./target/release/gbc check $group --deny-warnings >/dev/null || {
        echo "gbc check --deny-warnings failed for: $group" >&2
        exit 1
    }
done

echo "== check: negative corpus matches the JSON goldens =="
# Each programs/bad fixture re-renders to exactly its committed
# --diag-json snapshot (the .expect rendering is covered in-process by
# tests/diagnostics_golden.rs).
for fixture in programs/bad/*.dl; do
    golden="${fixture%.dl}.diag.json"
    # Negative fixtures exit nonzero by design; only the JSON matters.
    ./target/release/gbc check "$fixture" --diag-json "$diag_json" \
        >/dev/null 2>&1 || true
    diff -u "$golden" "$diag_json" || {
        echo "diagnostics drifted for $fixture (bless with GBC_BLESS=1 \
cargo test --test diagnostics_golden)" >&2
        exit 1
    }
done

echo "== ci-analyze: whole-program analysis reports match goldens =="
# `gbc analyze --analysis-json` over every shipped program group must
# reproduce the committed report byte for byte: column types,
# reachability facts, and the executor specializations (Int cost heap,
# fast feed) are part of the compatibility surface. Regenerate with:
#   ./target/release/gbc analyze <files> --analysis-json tests/goldens/analysis/<name>.json
analyze_groups=(
    "programs/prim.dl programs/graph_small.dl|prim"
    "programs/spanning.dl programs/graph_small.dl|spanning"
    "programs/kruskal.dl programs/graph_small.dl|kruskal"
    "programs/sort.dl|sort"
    "programs/matching.dl|matching"
    "programs/huffman.dl|huffman"
    "programs/scheduling.dl|scheduling"
    "programs/tsp.dl|tsp"
    "programs/assignment.dl|assignment"
)
for entry in "${analyze_groups[@]}"; do
    files="${entry%%|*}"
    name="${entry##*|}"
    # shellcheck disable=SC2086
    ./target/release/gbc analyze $files --analysis-json "$diag_json" || {
        echo "gbc analyze failed for: $files" >&2
        exit 1
    }
    diff -u "tests/goldens/analysis/$name.json" "$diag_json" || {
        echo "analysis report drifted for $files (regenerate the golden)" >&2
        exit 1
    }
done
# The analysis-on/off equivalence sweep (results and counters must be
# byte-identical with GBC_NO_ANALYZE semantics, threads 1 and 4).
cargo test -q --offline -p gbc-bench --test analysis_equivalence

echo "== ci-par: parallel saturation equivalence =="
# The determinism contract (DESIGN.md §9, §14): every thread count and
# both settings of the batched γ feed kernel produce byte-identical
# relations and semantic counters. The in-process sweep covers threads
# {1,2,4,8} × batch on/off; the CLI pass re-runs every shipped program
# profiled at 4 workers, which must succeed and keep its attribution
# line just like the serial profile above, and the batch-off sweep
# re-runs each program under GBC_NO_GAMMA_BATCH=1 asserting the derived
# facts match the default run byte for byte.
cargo test -q --offline -p gbc-bench --test parallel_equivalence
for entry in "${obs_groups[@]}"; do
    files="${entry%%|*}"
    # shellcheck disable=SC2086
    ./target/release/gbc run $files --threads 4 --profile >/dev/null 2>"$diag_json" || {
        echo "gbc run --threads 4 --profile failed for: $files" >&2
        exit 1
    }
    grep -q 'attributed' "$diag_json" || {
        echo "parallel profile missing attribution line for: $files" >&2
        exit 1
    }
    # shellcheck disable=SC2086
    ./target/release/gbc run $files >"$stats_json" || {
        echo "gbc run failed for: $files" >&2
        exit 1
    }
    # shellcheck disable=SC2086
    GBC_NO_GAMMA_BATCH=1 ./target/release/gbc run $files >"$diag_json" || {
        echo "gbc run with GBC_NO_GAMMA_BATCH=1 failed for: $files" >&2
        exit 1
    }
    diff "$stats_json" "$diag_json" || {
        echo "batch-off run diverged from the default for: $files" >&2
        exit 1
    }
done

echo "== bench: machine-readable experiment record + ratio gate =="
# Quick (0-warmup, median-of-3) run of the paper experiments; appends a
# labelled run to BENCH_experiments.json so every CI pass leaves a
# timing + counter trail next to the committed pre/post-PR records.
# --ratio-gate fails the build when the n-max declarative/classical
# wall-clock ratio breaches the ceilings committed in experiments.rs.
./target/release/experiments prim sort --quick --ratio-gate \
    --json BENCH_experiments.json --label "ci-quick" >/dev/null || {
    echo "declarative/classical ratio gate failed (see experiments.rs ceilings)" >&2
    exit 1
}
grep -q '"label": "ci-quick"' BENCH_experiments.json || {
    echo "experiments run did not land in BENCH_experiments.json" >&2
    exit 1
}
# The committed post-PR7 record must exist and carry the dictionary
# counter columns introduced with the columnar storage layer.
grep -q '"label": "post-PR7"' BENCH_experiments.json || {
    echo "BENCH_experiments.json is missing the committed post-PR7 run" >&2
    exit 1
}
# The committed post-PR8 record (whole-program analysis + Int cost
# heap) must exist too.
grep -q '"label": "post-PR8"' BENCH_experiments.json || {
    echo "BENCH_experiments.json is missing the committed post-PR8 run" >&2
    exit 1
}
# And the post-PR10 record (batched γ feed + clique scheduling), which
# introduced the heap_batch_pushes / feed_cliques columns.
grep -q '"label": "post-PR10"' BENCH_experiments.json || {
    echo "BENCH_experiments.json is missing the committed post-PR10 run" >&2
    exit 1
}
for col in dict_entries encode_hits decode_calls heap_batch_pushes feed_cliques; do
    grep -q "\"$col\"" BENCH_experiments.json || {
        echo "BENCH_experiments.json rows lack column: $col" >&2
        exit 1
    }
done

echo "== ci-serve: gbc serve endpoint sweep over real TCP =="
# Boot the actual `gbc serve` binary on an ephemeral port and exercise
# every endpoint through raw TCP streams (bash /dev/tcp): liveness,
# load, concurrent-safe evaluation, stats, journal, programs, the
# Prometheus scrape, and the malformed-request 400 path. The in-process
# TcpStream coverage (byte-identity with `gbc run`, mid-run scrapes)
# lives in tests/serve_smoke.rs, which `cargo test` above already ran.
./target/release/gbc serve 127.0.0.1:0 programs/sort.dl --threads 2 \
    2>"$serve_log" &
serve_pid=$!
for _ in $(seq 1 50); do
    grep -q 'listening on' "$serve_log" && break
    sleep 0.1
done
serve_port="$(sed -n 's#.*http://127\.0\.0\.1:\([0-9]*\).*#\1#p' "$serve_log")"
[ -n "$serve_port" ] || { echo "gbc serve did not come up" >&2; exit 1; }

http_get() { # PATH -> full response on stdout
    exec 9<>"/dev/tcp/127.0.0.1/$serve_port"
    printf 'GET %s HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' "$1" >&9
    cat <&9
    exec 9<&- 9>&-
}
http_post() { # PATH BODY -> full response on stdout
    local len
    len=$(printf '%s' "$2" | wc -c)
    exec 9<>"/dev/tcp/127.0.0.1/$serve_port"
    printf 'POST %s HTTP/1.1\r\nHost: ci\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
        "$1" "$len" "$2" >&9
    cat <&9
    exec 9<&- 9>&-
}

http_get /healthz | grep -q '"status":"ok"' || {
    echo "/healthz is not ok" >&2; exit 1; }
http_post /load '{"name": "prim", "files": ["programs/prim.dl", "programs/graph_small.dl"]}' \
    | grep -q '"greedy_plan": true' || {
    echo "POST /load failed for prim" >&2; exit 1; }
http_post /run '{"session": "prim", "threads": 2, "journal": true}' \
    | grep -q '"gamma_steps":5' || {
    echo "POST /run gave unexpected gamma_steps (want the gbc-run-pinned 5)" >&2; exit 1; }
http_get '/stats?session=prim' | grep -q '"schema_version": 2' || {
    echo "GET /stats missing the schema-v2 report" >&2; exit 1; }
http_get '/journal?session=prim' | grep -q '"type":"stage_commit"' || {
    echo "GET /journal carries no choice-audit events" >&2; exit 1; }
http_get /programs | grep -q '"name": "prim"' || {
    echo "GET /programs does not list prim" >&2; exit 1; }
http_get /metrics | grep -q '^gbc_runs_total 1$' || {
    echo "GET /metrics lost the run counter" >&2; exit 1; }
http_post /run '{not json' | head -1 | grep -q '400' || {
    echo "malformed /run body did not answer 400" >&2; exit 1; }
http_get /nowhere | head -1 | grep -q '404' || {
    echo "unknown endpoint did not answer 404" >&2; exit 1; }
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

echo "== ci-load: end-to-end serve-load smoke + regression gate =="
# A small multi-tenant closed-loop load run (2 sessions × 2 workers,
# quick request count) driven through a real gbc-serve server over TCP,
# appended to the bench trail, then gated against the committed
# post-PR10 record: semantic counters must match exactly; timing columns
# only warn (75% tolerance — shared CI boxes cannot hard-gate
# wall-clock, and the TCP path adds connect + framing latency that the
# pre-PR9 in-process serve-baseline rows never paid).
./target/release/experiments --serve-load 2x2 --quick \
    --json BENCH_experiments.json --label "ci-load" >/dev/null
grep -q '"label": "ci-load"' BENCH_experiments.json || {
    echo "serve-load run did not land in BENCH_experiments.json" >&2
    exit 1
}
./target/release/experiments --compare post-PR10 \
    --json BENCH_experiments.json --tolerance 75 || {
    echo "serve-load regression gate failed against post-PR10" >&2
    exit 1
}

echo "CI OK"
