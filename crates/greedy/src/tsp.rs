//! Section 5, "Computation of Sub-Optimals" — the greedy TSP chain.
//!
//! The paper's print:
//!
//! ```text
//! tsp_chain(X, Y, C, 1) <- least_arcs(X, Y, C), choice((), (X, Y)).
//! tsp_chain(X, Y, C, I) <- next(I), new_g(X, Y, C, J), I = J + 1,
//!                          least(C, I), choice(Y, X).
//! new_g(X, Y, C, J) <- tsp_chain(_, X, _, J), g(X, Y, C).
//! least_arcs(X, Y, C) <- g(X, Y, C), least(C).
//! ```
//!
//! As printed this does not compute simple chains: the exit rule's
//! choices live in a *different* `chosen` relation from the recursive
//! rule's, so the seed arc's endpoints are invisible to the recursive
//! FDs and the chain may revisit them — the same exit-rule blind spot
//! as the spanning-tree root, against the paper's own prose ("an arc
//! with starting node Y has not been previously selected").
//! [`PROGRAM`] repairs it minimally: the exit rule picks only the
//! *start node* (the source of the globally cheapest arc) and seeds the
//! chain with a dummy `nil` arc at stage 0, so **every real arc flows
//! through the single recursive rule** and its FDs:
//!
//! * `choice(Y, X)` — each node is entered at most once;
//! * `choice(X, Y)` — each node is left at most once (added; the
//!   paper's prose requires it);
//! * `I = J + 1` — extend only from the current chain end (the paper's
//!   own chain device; it exercises the executor's *chain mode*, where
//!   the stage column stays in the congruence key);
//! * `not start(Y)` in `new_g` — the start node is never re-entered
//!   (the dynamic analogue of Prim's `Y != source` root guard).
//!
//! The first committed arc is then the cheapest arc leaving the start
//! node — exactly the globally cheapest arc the paper's exit rule picks.

use gbc_ast::Symbol;
use gbc_baselines::Edge;
use gbc_core::{compile, Compiled, CoreError, GreedyRun};

use crate::graph::{decode_edges, Graph};

/// The paper's text, kept for reference (not executable as printed —
/// see the module docs).
pub const PROGRAM_PAPER: &str = "tsp_chain(X, Y, C, 1) <- least_arcs(X, Y, C), choice((), (X, Y)).
tsp_chain(X, Y, C, I) <- next(I), new_g(X, Y, C, J), I = J + 1, least(C, I), choice(Y, X).
new_g(X, Y, C, J) <- tsp_chain(_, X, _, J), g(X, Y, C).
least_arcs(X, Y, C) <- g(X, Y, C), least(C).";

/// The repaired greedy TSP-chain program (see module docs).
pub const PROGRAM: &str = "start(X) <- least_arcs(X, Y, C), choice((), (X)).
tsp_chain(nil, X, 0, 0) <- start(X).
tsp_chain(X, Y, C, I) <- next(I), new_g(X, Y, C, J), I = J + 1, least(C, I),
                         choice(Y, X), choice(X, Y).
new_g(X, Y, C, J) <- tsp_chain(_, X, _, J), g(X, Y, C), not start(Y).
least_arcs(X, Y, C) <- g(X, Y, C), least(C).";

/// Compile the TSP program.
pub fn compiled() -> Compiled {
    let program = gbc_parser::parse_program(PROGRAM).expect("static program text");
    compile(program).expect("tsp chain is stage-stratified")
}

/// Extract the chain's arcs in stage order.
pub fn decode(run: &GreedyRun) -> Vec<Edge> {
    let mut rows = run.db.facts_of(Symbol::intern("tsp_chain"));
    rows.sort_by_key(|r| r[3].as_int().unwrap_or(i64::MAX));
    decode_edges(&rows)
}

/// Run the greedy chain on `graph` (complete graphs yield Hamiltonian
/// paths).
pub fn run_greedy(graph: &Graph) -> Result<Vec<Edge>, CoreError> {
    let run = compiled().run_greedy(&graph.to_edb())?;
    Ok(decode(&run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_baselines::total_cost;
    use gbc_baselines::tsp::{greedy_chain, is_hamiltonian_path, nearest_neighbour};
    use gbc_core::ProgramClass;

    #[test]
    fn classifies_and_plans_in_chain_mode() {
        let c = compiled();
        assert_eq!(*c.class(), ProgramClass::StageStratified { alternating: true });
        assert!(c.has_greedy_plan(), "{:?}", c.plan_error());
    }

    #[test]
    fn complete_graphs_yield_hamiltonian_paths_matching_baseline() {
        for seed in 0..4 {
            let g = crate::workload::complete_geometric(8, seed);
            let decl = run_greedy(&g).unwrap();
            assert!(is_hamiltonian_path(g.n, &decl), "seed {seed}: {decl:?}");
            let base = greedy_chain(g.n, &g.edges);
            assert_eq!(
                total_cost(&decl),
                total_cost(&base),
                "same greedy chain cost (seed {seed})"
            );
        }
    }

    #[test]
    fn chain_is_contiguous_in_stage_order() {
        let g = crate::workload::complete_geometric(6, 9);
        let chain = run_greedy(&g).unwrap();
        for w in chain.windows(2) {
            assert_eq!(w[0].to, w[1].from, "stage k+1 extends stage k's end");
        }
    }

    #[test]
    fn quality_is_comparable_to_nearest_neighbour() {
        // Not an optimality claim — both are heuristics; the declarative
        // chain must be within a loose constant of nearest-neighbour.
        let g = crate::workload::complete_geometric(12, 2);
        let decl = run_greedy(&g).unwrap();
        let nn = nearest_neighbour(g.n, &g.edges, 0);
        let (dc, nc) = (total_cost(&decl), total_cost(&nn));
        assert!(dc <= nc * 3, "greedy chain {dc} vs nearest-neighbour {nc}");
    }
}
