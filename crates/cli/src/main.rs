//! `gbc` — command-line front end for the Greedy-by-Choice system.
//!
//! ```text
//! gbc check   FILE... [--deny-warnings] [--diag-json PATH]
//! gbc run     FILE... [--generic] [--seed N] [--threads N] [--stats] [--trace]
//!                     [--profile] [--stats-json PATH] [--trace-json PATH]
//!                     [--journal-json PATH]
//! gbc models  FILE... [--max N] [--stats] [--stats-json PATH]
//! gbc rewrite FILE...            print the negative (rewritten) program
//! gbc verify  FILE... [--stats] [--trace] [--stats-json PATH]
//! gbc explain FILE... -- 'ATOM'  print why matching facts are in the model
//! gbc serve   ADDR [FILE...] [--threads N]   long-running evaluation server
//! ```
//!
//! `gbc check` runs the full static pipeline — parse, validation,
//! Section 4 classification, lints — and renders every finding as a
//! rustc-style diagnostic with source snippets (codes `GBC0xx`; see
//! `gbc_ast::diag` for the registry). `--deny-warnings` turns a warning
//! count into a failing exit; `--diag-json PATH` additionally writes
//! the findings as JSON (`-` for stdout).
//!
//! Multiple files are concatenated (programs + facts mix freely), so
//! rules and EDB data can live in separate `.dl` files:
//!
//! ```text
//! gbc run programs/prim.dl programs/graph_small.dl --stats
//! ```
//!
//! Observability:
//!
//! * `--stats` prints the counter registry and the phase-timer report
//!   to stderr after the run;
//! * `--trace` streams one line per γ event (stage commits, exit
//!   commits, discards, flat rounds, rule firings, choice audits) to
//!   stderr as it happens — the paper's tuple ↔ stage bijection made
//!   visible;
//! * `--profile` prints a per-rule profile (firings, tuples derived,
//!   cumulative time, plan-cache hits), keyed back to `file:line`; on a
//!   parallel run (`--threads N`) it adds per-worker busy lanes and the
//!   merge bucket;
//! * `--threads N` fans flat-rule saturation out over an in-tree worker
//!   pool (γ-steps and choice commits stay sequential); output is
//!   byte-identical at any thread count. Defaults to `GBC_THREADS` or
//!   the machine's available parallelism;
//! * `--stats-json PATH` writes the full telemetry report (counters,
//!   per-round delta history, phase timings, per-rule profile, and —
//!   with `--trace` — the structured event journal) as JSON to `PATH`;
//! * `--trace-json PATH` writes the event stream in Chrome trace-event
//!   format (load in Perfetto / `chrome://tracing`);
//! * `--journal-json PATH` writes the event stream as JSON-lines;
//! * `gbc explain FILE... -- 'atom'` re-runs the program with
//!   provenance recording on and prints the derivation tree of every
//!   fact matching the atom: the rule that fired it (cited by source
//!   span), its γ step, the committed choice FDs, the rejected
//!   `diffChoice` alternatives, and the parent facts, recursively.

use std::process::ExitCode;
use std::sync::Arc;

use gbc_ast::diag::{error_count, render_all, warning_count};
use gbc_ast::{Diagnostic, Program, SourceMap};
use gbc_core::{compile, verify_stable_model};
use gbc_engine::enumerate::{all_choice_models_with, EnumerateConfig};
use gbc_engine::{ChoiceFixpoint, DeterministicFirst, SeededRandom};
use gbc_storage::{dict_stats, Database, DictStats, ProvenanceArena};
use gbc_telemetry::{
    ChromeTrace, JournalBuffer, Json, StderrTrace, TeeTrace, Telemetry, TraceSink,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    files: Vec<String>,
    generic: bool,
    stats: bool,
    trace: bool,
    profile: bool,
    stats_json: Option<String>,
    trace_json: Option<String>,
    journal_json: Option<String>,
    seed: Option<u64>,
    max_models: usize,
    deny_warnings: bool,
    diag_json: Option<String>,
    /// `gbc analyze --analysis-json PATH|-`: write the whole-program
    /// analysis report as JSON instead of the text rendering.
    analysis_json: Option<String>,
    /// Worker threads for flat-rule saturation (`gbc run --threads N`).
    /// `None` falls back to `GBC_THREADS`, then to
    /// `available_parallelism()` — see [`gbc_engine::pool::default_threads`].
    threads: Option<usize>,
    /// The atom after `--` (for `gbc explain`).
    query: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        generic: false,
        stats: false,
        trace: false,
        profile: false,
        stats_json: None,
        trace_json: None,
        journal_json: None,
        seed: None,
        max_models: 1000,
        deny_warnings: false,
        diag_json: None,
        analysis_json: None,
        threads: None,
        query: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--generic" => opts.generic = true,
            "--stats" => opts.stats = true,
            "--trace" => opts.trace = true,
            "--profile" => opts.profile = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--diag-json" => {
                let v = it.next().ok_or("--diag-json needs a path (or `-` for stdout)")?;
                opts.diag_json = Some(v.clone());
            }
            "--analysis-json" => {
                let v = it.next().ok_or("--analysis-json needs a path (or `-` for stdout)")?;
                opts.analysis_json = Some(v.clone());
            }
            "--stats-json" => {
                let v = it.next().ok_or("--stats-json needs a path")?;
                opts.stats_json = Some(v.clone());
            }
            "--trace-json" => {
                let v = it.next().ok_or("--trace-json needs a path")?;
                opts.trace_json = Some(v.clone());
            }
            "--journal-json" => {
                let v = it.next().ok_or("--journal-json needs a path")?;
                opts.journal_json = Some(v.clone());
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = Some(v.parse().map_err(|_| format!("bad seed `{v}`"))?);
            }
            "--max" => {
                let v = it.next().ok_or("--max needs a value")?;
                opts.max_models = v.parse().map_err(|_| format!("bad max `{v}`"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                opts.threads = Some(n);
            }
            "--" => {
                let rest: Vec<&str> = it.by_ref().map(String::as_str).collect();
                let joined = rest.join(" ");
                if joined.trim().is_empty() {
                    return Err("`--` needs a query atom after it".into());
                }
                opts.query = Some(joined);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => opts.files.push(file.to_owned()),
        }
    }
    if opts.files.is_empty() {
        return Err("no input files".into());
    }
    Ok(opts)
}

/// The structured sinks a run feeds, held so [`Options::report`] can
/// write them out afterwards.
struct Observers {
    journal: Option<Arc<JournalBuffer>>,
    chrome: Option<Arc<ChromeTrace>>,
}

impl Options {
    /// Worker-thread count for flat-rule saturation: the `--threads`
    /// flag when given, else `GBC_THREADS`, else
    /// `available_parallelism()`. Any count produces byte-identical
    /// output (DESIGN.md §9); the count only changes how saturation
    /// rounds are scheduled.
    fn resolve_threads(&self) -> usize {
        self.threads.unwrap_or_else(gbc_engine::pool::default_threads)
    }

    /// Build the telemetry bundle the flags ask for. Counters are always
    /// on; `--stats`/`--stats-json`/`--profile` additionally enable
    /// phase timers and the per-round delta history; `--profile` turns
    /// on the per-rule profiler; `--trace` attaches a stderr sink;
    /// `--trace-json`/`--journal-json` (and `--trace --stats-json`)
    /// attach structured sinks, teed together when several are live.
    fn telemetry(&self) -> (Telemetry, Observers) {
        let mut tel = if self.stats || self.stats_json.is_some() || self.profile {
            Telemetry::enabled()
        } else {
            Telemetry::counters_only()
        };
        if self.profile {
            tel = tel.with_profiler();
        }
        if self.stats_json.is_some() {
            // Per-round latency histogram for the stats report's
            // `latency` object. Kept out of `Telemetry::to_json` (its
            // bucket counts are timing-dependent); embedded below in
            // `report`, like the journal.
            tel = tel.with_round_latency();
        }
        let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
        if self.trace {
            sinks.push(Arc::new(StderrTrace));
        }
        let journal = if self.journal_json.is_some() || (self.trace && self.stats_json.is_some()) {
            let j = Arc::new(JournalBuffer::new());
            sinks.push(j.clone());
            Some(j)
        } else {
            None
        };
        let chrome = if self.trace_json.is_some() {
            let c = Arc::new(ChromeTrace::new());
            sinks.push(c.clone());
            Some(c)
        } else {
            None
        };
        let tel = match sinks.len() {
            0 => tel,
            1 => tel.with_trace(sinks.pop().expect("one sink")),
            _ => tel.with_trace(Arc::new(TeeTrace::new(sinks))),
        };
        (tel, Observers { journal, chrome })
    }

    /// Emit the post-run reports the flags ask for. `dict_base` is the
    /// dictionary counter snapshot taken when the command started: the
    /// value dictionary is process-global, so the report shows this
    /// command's movement, not the process totals.
    fn report(
        &self,
        tel: &Telemetry,
        obs: &Observers,
        program: &Program,
        sm: &SourceMap,
        dict_base: &DictStats,
    ) -> Result<(), String> {
        if self.stats {
            eprint!("{}", tel.snapshot().render());
            let phases = tel.phases.render();
            if !phases.is_empty() {
                eprint!("{phases}");
            }
        }
        if self.profile {
            eprint!("{}", render_profile(tel, program, sm));
        }
        if let Some(path) = &self.stats_json {
            let mut json = tel.to_json();
            if let (Some(hist), Json::Obj(fields)) = (tel.round_latency(), &mut json) {
                // The γ-step bucket split (feed / choose / commit) rides
                // along so load reports can tell queue maintenance from
                // choice resolution without re-parsing the phases array.
                let gamma: Vec<(&str, Json)> = tel
                    .phases
                    .entries()
                    .iter()
                    .filter_map(|(name, secs, _count)| {
                        let key = match name.strip_prefix("run/gamma/")? {
                            "feed" => "feed_secs",
                            "choose" => "choose_secs",
                            "commit" => "commit_secs",
                            _ => return None,
                        };
                        Some((key, Json::Float(*secs)))
                    })
                    .collect();
                let mut latency = vec![
                    ("threads", Json::UInt(self.resolve_threads() as u64)),
                    ("rounds", hist.to_json()),
                ];
                if !gamma.is_empty() {
                    latency.push(("gamma", Json::obj(gamma)));
                }
                fields.push(("latency".to_owned(), Json::obj(latency)));
            }
            if let Json::Obj(fields) = &mut json {
                let d = dict_stats().since(dict_base);
                fields.push((
                    "dictionary".to_owned(),
                    Json::obj(vec![
                        ("dict_entries", Json::UInt(d.dict_entries)),
                        ("encode_hits", Json::UInt(d.encode_hits)),
                        ("decode_calls", Json::UInt(d.decode_calls)),
                    ]),
                ));
            }
            if let (Some(journal), Json::Obj(fields)) = (&obs.journal, &mut json) {
                fields.push(("journal".to_owned(), journal.to_json()));
            }
            let mut text = json.pretty();
            text.push('\n');
            std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        }
        if let (Some(path), Some(chrome)) = (&self.trace_json, &obs.chrome) {
            let mut text = chrome.to_json().pretty();
            text.push('\n');
            std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        }
        if let (Some(path), Some(journal)) = (&self.journal_json, &obs.journal) {
            std::fs::write(path, journal.to_jsonl()).map_err(|e| format!("{path}: {e}"))?;
        }
        Ok(())
    }
}

/// The `--profile` table: one line per rule that was profiled, sorted
/// by cumulative time, keyed back to the rule's source location, with a
/// closing line comparing attributed time against the whole `run`
/// phase.
fn render_profile(tel: &Telemetry, program: &Program, sm: &SourceMap) -> String {
    let mut entries = tel.profiler.entries();
    entries.sort_by(|a, b| b.1.nanos.cmp(&a.1.nanos).then(a.0.cmp(&b.0)));
    let mut out = String::new();
    out.push_str("per-rule profile:\n");
    out.push_str(&format!(
        "  {:<5} {:<14} {:<26} {:>9} {:>9} {:>11} {:>10}\n",
        "rule", "head", "source", "firings", "tuples", "time", "plan hits"
    ));
    for (rule, p) in &entries {
        let (head, site) = match program.rules.get(*rule) {
            Some(r) => {
                let site = match sm.locate(r.span().start) {
                    Some(loc) => format!("{}:{}", loc.file, loc.line),
                    None => "<no source>".to_owned(),
                };
                (r.head.pred.to_string(), site)
            }
            None => ("?".to_owned(), "<no source>".to_owned()),
        };
        out.push_str(&format!(
            "  #{:<4} {:<14} {:<26} {:>9} {:>9} {:>10.6}s {:>10}\n",
            rule,
            head,
            site,
            p.firings,
            p.tuples,
            p.secs(),
            p.plan_hits
        ));
    }
    let lanes = tel.profiler.lane_secs();
    if lanes.iter().any(|&s| s > 0.0) {
        for (w, busy) in lanes.iter().enumerate() {
            out.push_str(&format!("  worker {w}: {busy:.6}s busy\n"));
        }
        out.push_str(&format!("  parallel merge: {:.6}s\n", tel.profiler.merge_secs()));
    }
    let gamma: Vec<(String, f64, u64)> = tel
        .phases
        .entries()
        .iter()
        .filter(|(name, _, _)| name.starts_with("run/gamma/"))
        .map(|(name, secs, count)| (name.clone(), *secs, *count))
        .collect();
    if !gamma.is_empty() {
        out.push_str("  gamma buckets:\n");
        for (name, secs, count) in gamma {
            let bucket = name.strip_prefix("run/gamma/").unwrap_or(&name);
            out.push_str(&format!("    {bucket:<7} {secs:>10.6}s x{count}\n"));
        }
    }
    let attributed = tel.profiler.total_secs();
    let run_secs =
        tel.phases.entries().iter().find(|(name, _, _)| name == "run").map(|(_, secs, _)| *secs);
    match run_secs {
        Some(total) if total > 0.0 => out.push_str(&format!(
            "  attributed {:.6}s of {:.6}s run time ({:.1}%)\n",
            attributed,
            total,
            100.0 * attributed / total
        )),
        _ => out.push_str(&format!("  attributed {attributed:.6}s\n")),
    }
    out
}

/// `gbc serve ADDR [FILE...]`: bind the long-running evaluation server
/// on `ADDR` (port `0` picks an ephemeral port, printed on stderr),
/// preload each `FILE` as a session named after its file stem, and
/// serve until the process is killed. `--threads N` sizes the HTTP
/// worker pool — engine-level parallelism is chosen per request via the
/// `threads` field of `POST /run` bodies. Endpoints and the metric name
/// registry are documented in DESIGN.md §13.
fn cmd_serve(opts: &Options) -> Result<(), String> {
    let (addr, preload) = opts.files.split_first().expect("parse_options requires an argument");
    let server = gbc_serve::Server::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    for file in preload {
        let name = std::path::Path::new(file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| file.clone());
        let sm = read_sources(std::slice::from_ref(file))?;
        let compiled =
            gbc_serve::router::compile_source(&sm).map_err(|e| format!("{file}: {e}"))?;
        server.state().install(gbc_serve::Session::new(&name, file, compiled, Database::new()));
        eprintln!("loaded session `{name}` from {file}");
    }
    let workers = opts.resolve_threads();
    eprintln!("gbc serve listening on http://{} ({workers} workers)", server.local_addr());
    server.serve(workers).map_err(|e| e.to_string())
}

/// Read every input file into one [`SourceMap`] (programs + facts mix
/// freely; spans stay attributable to the file they came from).
fn read_sources(files: &[String]) -> Result<SourceMap, String> {
    let mut sm = SourceMap::new();
    for f in files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        sm.add_file(f, &text);
    }
    Ok(sm)
}

/// Render `diags` against `sm` as the failure message for a command
/// that cannot proceed (parse or validation errors).
fn render_failure(diags: &[Diagnostic], sm: &SourceMap) -> String {
    let rendered = render_all(diags, sm);
    format!("invalid program\n{}{} error(s) emitted", rendered, error_count(diags))
}

fn load(files: &[String]) -> Result<(Program, SourceMap), String> {
    let sm = read_sources(files)?;
    let program = gbc_parser::parse_program(&sm.source())
        .map_err(|e| render_failure(&[e.to_diagnostic()], &sm))?;
    let diags = program.diagnostics();
    if error_count(&diags) > 0 {
        return Err(render_failure(&diags, &sm));
    }
    Ok((program, sm))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    let opts = parse_options(rest)?;
    match cmd.as_str() {
        "check" => cmd_check(&opts),
        "analyze" => cmd_analyze(&opts),
        "run" => cmd_run(&opts),
        "models" => cmd_models(&opts),
        "rewrite" => cmd_rewrite(&opts),
        "verify" => cmd_verify(&opts),
        "explain" => cmd_explain(&opts),
        "serve" => cmd_serve(&opts),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: gbc <check|analyze|run|models|rewrite|verify|explain> FILE... \
     [--generic] [--seed N] [--threads N] [--stats] [--trace] [--profile] \
     [--stats-json PATH] [--trace-json PATH] [--journal-json PATH] [--max N] \
     [--deny-warnings] [--diag-json PATH] [--analysis-json PATH] [-- 'atom']\n\
     \x20      gbc serve ADDR [FILE...] [--threads N]    (see DESIGN.md §13)"
        .to_owned()
}

fn cmd_check(opts: &Options) -> Result<(), String> {
    let sm = read_sources(&opts.files)?;
    let mut summary = Vec::new();
    let diagnostics = match gbc_parser::parse_program(&sm.source()) {
        Err(e) => vec![e.to_diagnostic()],
        Ok(program) => {
            let report = gbc_core::check_program(&program);
            summary.push(format!("rules: {}", program.rules.len()));
            summary.push(format!(
                "facts: {}, proper rules: {}",
                program.facts().count(),
                program.proper_rules().count()
            ));
            summary.push(format!("class: {}", report.analysis.class.summary()));
            for (i, c) in report.analysis.cliques.iter().enumerate() {
                let preds: Vec<String> = c.preds.iter().map(|p| p.to_string()).collect();
                summary.push(format!(
                    "clique {i}: {{{}}} next:{} flat:{} exit:{}{}",
                    preds.join(", "),
                    c.next_rules.len(),
                    c.flat_rules.len(),
                    c.exit_rules.len(),
                    if c.is_stage_clique {
                        if c.stage_stratified {
                            if c.alternating {
                                " [stage-stratified, alternating]"
                            } else {
                                " [stage-stratified]"
                            }
                        } else {
                            " [NOT stage-stratified]"
                        }
                    } else {
                        ""
                    }
                ));
            }
            if report.errors() == 0 {
                match compile(program) {
                    Ok(compiled) => match compiled.plan_error() {
                        None => summary.push("greedy plan: available (Section 6 executor)".into()),
                        Some(e) => summary.push(format!("greedy plan: unavailable — {e}")),
                    },
                    Err(e) => summary.push(format!("greedy plan: unavailable — {e}")),
                }
            }
            report.diagnostics
        }
    };

    let rendered = render_all(&diagnostics, &sm);
    if !rendered.is_empty() {
        print!("{rendered}");
    }
    for line in &summary {
        println!("{line}");
    }
    let errors = error_count(&diagnostics);
    let warnings = warning_count(&diagnostics);
    if errors > 0 || warnings > 0 {
        println!("{errors} error(s), {warnings} warning(s)");
    } else {
        println!("no diagnostics");
    }

    if let Some(path) = &opts.diag_json {
        let mut text = gbc_core::diagnostics_to_json(&diagnostics, &sm).pretty();
        text.push('\n');
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        }
    }

    if errors > 0 {
        Err(format!("check failed with {errors} error(s)"))
    } else if opts.deny_warnings && warnings > 0 {
        Err(format!("check failed with {warnings} warning(s) (--deny-warnings)"))
    } else {
        Ok(())
    }
}

fn cmd_analyze(opts: &Options) -> Result<(), String> {
    let (program, _sm) = load(&opts.files)?;
    let compiled = compile(program).map_err(|e| e.to_string())?;
    let report = compiled.analyze_report();
    match &opts.analysis_json {
        Some(path) => {
            let mut text = report.to_json().pretty();
            text.push('\n');
            if path == "-" {
                print!("{text}");
            } else {
                std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
            }
        }
        None => print!("{}", report.render()),
    }
    Ok(())
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let dict_base = dict_stats();
    let (program, sm) = load(&opts.files)?;
    let compiled = compile(program.clone()).map_err(|e| e.to_string())?;
    let edb = Database::new();
    let (tel, obs) = opts.telemetry();

    let run = if opts.generic || !compiled.has_greedy_plan() || opts.seed.is_some() {
        // Seeded or generic: the engine fixpoint with the chosen policy.
        let mut fixpoint =
            ChoiceFixpoint::new(compiled.expanded(), &edb).map_err(|e| e.to_string())?;
        fixpoint.set_telemetry(tel.clone());
        tel.phases
            .time("run", || match opts.seed {
                Some(seed) => fixpoint.run(&mut SeededRandom::new(seed)),
                None => fixpoint.run(&mut DeterministicFirst),
            })
            .map_err(|e| e.to_string())?;
        let chosen = gbc_core::verify::records_from_engine(&fixpoint, compiled.expanded());
        gbc_core::GreedyRun {
            db: fixpoint.into_database(),
            chosen,
            stats: gbc_core::GreedyStats::default(),
            snapshot: tel.snapshot(),
            pool: None,
        }
    } else {
        let config = gbc_core::GreedyConfig::with_threads(opts.resolve_threads());
        compiled.run_greedy_telemetry(&edb, config, &tel).map_err(|e| e.to_string())?
    };

    println!("{}", run.db.canonical_form());
    opts.report(&tel, &obs, &program, &sm, &dict_base)?;
    if opts.profile {
        if let Some(pool) = &run.pool {
            eprint!("{}", render_pool(pool));
        }
    }
    Ok(())
}

/// The `--profile` pool-utilization summary: one lane per worker with
/// busy/idle split, task and steal counts, plus the chunk-size
/// distribution and the serial merge cost.
fn render_pool(report: &gbc_engine::PoolReport) -> String {
    let mut out = String::new();
    out.push_str("pool utilization:\n");
    for (w, lane) in report.workers.iter().enumerate() {
        let busy = lane.busy_nanos as f64 / 1e9;
        let idle = lane.idle_nanos as f64 / 1e9;
        let occupancy = if lane.busy_nanos + lane.idle_nanos > 0 {
            100.0 * lane.busy_nanos as f64 / (lane.busy_nanos + lane.idle_nanos) as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  worker {w}: {busy:.6}s busy, {idle:.6}s idle ({occupancy:.1}% occupied), \
             {} tasks, {} steals\n",
            lane.tasks, lane.steals
        ));
    }
    let chunks = &report.chunks;
    if !chunks.is_empty() {
        out.push_str(&format!(
            "  chunks: {} fanned out, {}/{}/{} rows (p50/p99/max)\n",
            chunks.count(),
            chunks.p50(),
            chunks.p99(),
            chunks.max()
        ));
    }
    out.push_str(&format!(
        "  merge: {:.6}s serial, {:.1}% mean occupancy\n",
        report.merge_nanos as f64 / 1e9,
        100.0 * report.utilization()
    ));
    out
}

fn cmd_explain(opts: &Options) -> Result<(), String> {
    let Some(atom) = &opts.query else {
        return Err("explain needs a query: gbc explain FILE... -- 'pred(X, ...)'".into());
    };
    let (program, sm) = load(&opts.files)?;
    let query = gbc_parser::parse_rule(&format!("query <- {}.", atom.trim().trim_end_matches('.')))
        .map_err(|e| format!("bad query atom `{atom}`: {e}"))?;
    let compiled = compile(program.clone()).map_err(|e| e.to_string())?;
    let mut edb = Database::new();
    let arena = ProvenanceArena::shared();
    edb.set_provenance(Arc::clone(&arena));
    let (tel, _obs) = opts.telemetry();
    let run = compiled.run_telemetry(&edb, &tel).map_err(|e| e.to_string())?;
    let out = gbc_core::explain::explain_atom(&program, &sm, &run.db, &arena, &query)?;
    print!("{out}");
    Ok(())
}

fn cmd_models(opts: &Options) -> Result<(), String> {
    let dict_base = dict_stats();
    let (program, sm) = load(&opts.files)?;
    // The enumerator needs a next-free program.
    let expanded = gbc_core::rewrite::next::expand_next(&program).map_err(|e| e.to_string())?;
    let config = EnumerateConfig { max_nodes: 1_000_000, max_models: opts.max_models };
    let (tel, obs) = opts.telemetry();
    let models = tel
        .phases
        .time("models", || all_choice_models_with(&expanded, &Database::new(), config))
        .map_err(|e| e.to_string())?;
    println!("{} model(s)", models.len());
    for (i, m) in models.iter().enumerate() {
        println!("--- model {}", i + 1);
        println!("{}", m.canonical_form());
    }
    opts.report(&tel, &obs, &program, &sm, &dict_base)?;
    Ok(())
}

fn cmd_rewrite(opts: &Options) -> Result<(), String> {
    let (program, _sm) = load(&opts.files)?;
    let fr = gbc_core::rewrite_full(&program).map_err(|e| e.to_string())?;
    print!("{}", fr.program);
    Ok(())
}

fn cmd_verify(opts: &Options) -> Result<(), String> {
    let dict_base = dict_stats();
    let (program, sm) = load(&opts.files)?;
    let compiled = compile(program.clone()).map_err(|e| e.to_string())?;
    let edb = Database::new();
    let (tel, obs) = opts.telemetry();
    let run = compiled.run_telemetry(&edb, &tel).map_err(|e| e.to_string())?;
    let ok = verify_stable_model(&program, &edb, &run).map_err(|e| e.to_string())?;
    println!(
        "stable model check: {}",
        if ok { "PASS (Theorem 1 holds for this run)" } else { "FAIL" }
    );
    opts.report(&tel, &obs, &program, &sm, &dict_base)?;
    if ok {
        Ok(())
    } else {
        Err("run is not a stable model".into())
    }
}
