//! Minimum spanning trees three ways: declarative Prim (Example 4),
//! declarative Kruskal (Example 8, stage-view evaluation), and the
//! classical baselines — all agreeing on the optimum.
//!
//! ```sh
//! cargo run --example mst
//! ```

use gbc_baselines::{kruskal::kruskal_mst, prim::prim_mst, total_cost};
use gbc_greedy::{kruskal, prim, workload};

fn main() {
    // A random connected graph: 64 nodes, ~3 chords per node.
    let g = workload::connected_graph(64, 192, 1000, 7);
    println!("graph: {} nodes, {} directed edges", g.n, g.num_edges());

    // Declarative Prim through the (R,Q,L) executor.
    let prim_decl = prim::run_greedy(&g, 0).expect("prim");
    println!("declarative Prim:    {} edges, cost {}", prim_decl.len(), total_cost(&prim_decl));

    // Declarative Kruskal through stage views (the paper's O(e·n) model).
    let kru = kruskal::run_stage_views(&g);
    println!(
        "declarative Kruskal: {} edges, cost {} ({} redundant pops)",
        kru.tree.len(),
        total_cost(&kru.tree),
        kru.redundant
    );

    // Classical comparators.
    let prim_base = prim_mst(g.n, &g.edges, 0);
    let kru_base = kruskal_mst(g.n, &g.edges);
    println!("classical Prim:      cost {}", total_cost(&prim_base));
    println!("classical Kruskal:   cost {}", total_cost(&kru_base));

    assert_eq!(total_cost(&prim_decl), total_cost(&prim_base));
    assert_eq!(total_cost(&kru.tree), total_cost(&kru_base));
    assert_eq!(total_cost(&prim_decl), total_cost(&kru.tree));
    println!("all four agree on the minimum: OK");
}
