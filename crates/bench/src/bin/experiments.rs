//! `experiments` — regenerate every Section 6 analysis as a table.
//!
//! ```text
//! experiments [prim|sort|matching|kruskal|models|huffman|tsp|spanning|ablation|all] [--quick]
//! ```
//!
//! Each experiment prints problem sizes, wall-clock times for the
//! declarative executor and its procedural comparator, the fitted
//! scaling exponent of each, and the correctness cross-checks. Output
//! is recorded in `EXPERIMENTS.md`.

use gbc_baselines::huffman::{huffman_tree, weighted_path_length as wpl_base};
use gbc_baselines::kruskal::{kruskal_mst, kruskal_relabel};
use gbc_baselines::matching::greedy_matching;
use gbc_baselines::prim::prim_mst;
use gbc_baselines::sorts::{heapsort, insertion_sort};
use gbc_baselines::total_cost;
use gbc_baselines::tsp::{greedy_chain, is_hamiltonian_path, nearest_neighbour};
use gbc_bench::{fit_exponent, render_table, time_once, Sample};
use gbc_greedy::{huffman, kruskal, matching, prim, sorting, spanning, student, tsp, workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_owned());

    let run = |name: &str| which == "all" || which == name;
    if run("prim") {
        e1_prim(quick);
    }
    if run("sort") {
        e2_sort(quick);
    }
    if run("matching") {
        e3_matching(quick);
    }
    if run("kruskal") {
        e4_kruskal(quick);
    }
    if run("models") {
        e5_models();
    }
    if run("huffman") {
        e6_huffman(quick);
    }
    if run("tsp") {
        e7_tsp(quick);
    }
    if run("spanning") {
        e8_spanning(quick);
    }
    if run("scheduling") {
        e9_scheduling();
    }
    if run("ablation") {
        a1_ablation(quick);
    }
}

fn e9_scheduling() {
    println!("\n== E9  Job sequencing with deadlines (Section 5 'scheduling algorithms', most) ==");
    use gbc_baselines::scheduling::{job_sequencing, optimal_profit_bruteforce, Job};
    let mut rows = Vec::new();
    for seed in [1u64, 2, 3, 4] {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 8;
        let jobs: Vec<Job> = (0..n)
            .map(|i| Job::new(i, rng.gen_range(1..100), rng.gen_range(1..6)))
            .collect();
        let sched = gbc_greedy::scheduling::run_greedy(&jobs).unwrap();
        let decl = gbc_greedy::scheduling::total_profit(&jobs, &sched);
        let (_, base) = job_sequencing(&jobs);
        let opt = optimal_profit_bruteforce(&jobs);
        assert_eq!(decl, base);
        assert_eq!(decl, opt, "greedy is optimal (matroid)");
        rows.push(vec![
            seed.to_string(),
            n.to_string(),
            decl.to_string(),
            base.to_string(),
            opt.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["seed", "jobs", "decl_profit", "greedy_profit", "optimum"], &rows)
    );
    println!("declarative = procedural greedy = brute-force optimum on every row");
}

fn secs(s: f64) -> String {
    format!("{:.4}", s)
}

fn e1_prim(quick: bool) {
    println!("\n== E1  Prim (Example 4): declarative O(e log e) vs classical O(e log n) ==");
    let sizes: &[usize] = if quick { &[128, 256, 512] } else { &[128, 256, 512, 1024, 2048] };
    let mut rows = Vec::new();
    let mut decl_samples = Vec::new();
    let mut base_samples = Vec::new();
    for &n in sizes {
        let g = workload::connected_graph(n, 3 * n, 1_000_000, 42);
        let e = g.num_edges();
        let (compiled, edb) = prim::prepared(&g, 0);
        let (run, t_decl) = time_once(|| compiled.run_greedy(&edb).unwrap());
        let (base, t_base) = time_once(|| prim_mst(g.n, &g.edges, 0));
        let decl_edges = prim::decode(&run);
        assert_eq!(total_cost(&decl_edges), total_cost(&base), "MST costs must agree");
        decl_samples.push(Sample { size: e as u64, secs: t_decl });
        base_samples.push(Sample { size: e as u64, secs: t_base });
        rows.push(vec![
            n.to_string(),
            e.to_string(),
            secs(t_decl),
            secs(t_base),
            format!("{:.1}", t_decl / t_base.max(1e-9)),
            total_cost(&decl_edges).to_string(),
            run.stats.discarded.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["n", "e", "decl_s", "classical_s", "ratio", "mst_cost", "R_r"],
            &rows
        )
    );
    println!(
        "scaling exponent vs e: declarative {:.2}, classical {:.2} (both ≈ 1 = e·log e)",
        fit_exponent(&decl_samples),
        fit_exponent(&base_samples)
    );
}

fn e2_sort(quick: bool) {
    println!("\n== E2  Sorting (Example 5): the fixpoint runs heap-sort, O(n log n) ==");
    let sizes: &[usize] = if quick { &[512, 1024, 2048] } else { &[512, 1024, 2048, 4096, 8192] };
    let mut rows = Vec::new();
    let (mut decl_s, mut heap_s, mut ins_s) = (Vec::new(), Vec::new(), Vec::new());
    for &n in sizes {
        let items = workload::random_items(n, 42);
        let compiled = sorting::compiled();
        let edb = sorting::edb(&items);
        let (run, t_decl) = time_once(|| compiled.run_greedy(&edb).unwrap());
        assert_eq!(run.stats.gamma_steps as usize, n);
        let (_, t_heap) = time_once(|| {
            let mut v: Vec<(i64, i64)> = items.iter().map(|&(x, c)| (c, x)).collect();
            heapsort(&mut v);
            v
        });
        let (_, t_ins) = time_once(|| {
            let mut v: Vec<(i64, i64)> = items.iter().map(|&(x, c)| (c, x)).collect();
            insertion_sort(&mut v);
            v
        });
        decl_s.push(Sample { size: n as u64, secs: t_decl });
        heap_s.push(Sample { size: n as u64, secs: t_heap });
        ins_s.push(Sample { size: n as u64, secs: t_ins });
        rows.push(vec![n.to_string(), secs(t_decl), secs(t_heap), secs(t_ins)]);
    }
    println!("{}", render_table(&["n", "decl_s", "heapsort_s", "insertion_s"], &rows));
    println!(
        "scaling exponents: declarative {:.2} (≈1, heap-sort-like), heapsort {:.2}, insertion {:.2} (≈2)",
        fit_exponent(&decl_s),
        fit_exponent(&heap_s),
        fit_exponent(&ins_s)
    );
}

fn e3_matching(quick: bool) {
    println!("\n== E3  Matching (Example 7): greedy maximal matching, O(e log e) ==");
    let sizes: &[usize] = if quick { &[1024, 2048, 4096] } else { &[1024, 2048, 4096, 8192, 16384] };
    let mut rows = Vec::new();
    let (mut decl_s, mut base_s) = (Vec::new(), Vec::new());
    for &e in sizes {
        let g = workload::random_arcs(e / 4, e, 42);
        let compiled = matching::compiled();
        let edb = g.to_edb();
        let (run, t_decl) = time_once(|| compiled.run_greedy(&edb).unwrap());
        let (base, t_base) = time_once(|| greedy_matching(g.n, &g.edges));
        let decl = matching::decode(&run);
        assert_eq!(total_cost(&decl), total_cost(&base), "same greedy matching");
        decl_s.push(Sample { size: e as u64, secs: t_decl });
        base_s.push(Sample { size: e as u64, secs: t_base });
        rows.push(vec![
            e.to_string(),
            decl.len().to_string(),
            secs(t_decl),
            secs(t_base),
            format!("{:.1}", t_decl / t_base.max(1e-9)),
        ]);
    }
    println!("{}", render_table(&["e", "|matching|", "decl_s", "classical_s", "ratio"], &rows));
    println!(
        "scaling exponents vs e: declarative {:.2}, classical {:.2}",
        fit_exponent(&decl_s),
        fit_exponent(&base_s)
    );
}

fn e4_kruskal(quick: bool) {
    println!("\n== E4  Kruskal (Example 8): declarative O(e·n) vs classical O(e log e) ==");
    let sizes: &[usize] = if quick { &[256, 512, 1024] } else { &[256, 512, 1024, 2048, 4096] };
    let mut rows = Vec::new();
    let (mut decl_s, mut uf_s) = (Vec::new(), Vec::new());
    for &n in sizes {
        let g = workload::connected_graph(n, 3 * n, 1_000_000, 42);
        let (run, t_decl) = time_once(|| kruskal::run_stage_views(&g));
        let (relab, t_relab) = time_once(|| kruskal_relabel(g.n, &g.edges));
        let (uf, t_uf) = time_once(|| kruskal_mst(g.n, &g.edges));
        assert_eq!(total_cost(&run.tree), total_cost(&uf));
        assert_eq!(total_cost(&relab), total_cost(&uf));
        decl_s.push(Sample { size: n as u64, secs: t_decl });
        uf_s.push(Sample { size: n as u64, secs: t_uf });
        rows.push(vec![
            n.to_string(),
            g.num_edges().to_string(),
            secs(t_decl),
            secs(t_relab),
            secs(t_uf),
            format!("{:.1}", t_decl / t_uf.max(1e-9)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["n", "e", "decl_views_s", "relabel_s", "union_find_s", "gap"],
            &rows
        )
    );
    println!(
        "scaling exponents vs n (e ∝ n): declarative {:.2} (≈2 = e·n), union-find {:.2} (≈1); \
         the gap grows with n, as the paper's analysis predicts",
        fit_exponent(&decl_s),
        fit_exponent(&uf_s)
    );
}

fn e5_models() {
    println!("\n== E5  Choice models (Examples 1-2, Section 2) ==");
    let models = student::enumerate_models().unwrap();
    println!(
        "Example 1 one-student-per-course: {} choice models (paper lists M1, M2, M3)",
        models.len()
    );
    let bi = student::enumerate_bi_models().unwrap();
    println!(
        "bi_st_c (choice + least combination): {} stable models (paper lists 2)",
        bi.len()
    );
    assert_eq!(models.len(), 3);
    assert_eq!(bi.len(), 2);
}

fn e6_huffman(quick: bool) {
    println!("\n== E6  Huffman (Example 6): optimal prefix trees ==");
    let sizes: &[usize] = if quick { &[8, 16, 32] } else { &[8, 16, 32, 64, 96] };
    let mut rows = Vec::new();
    for &k in sizes {
        let w = workload::letter_freqs(k, 42);
        let (run, t_decl) = time_once(|| huffman::run_greedy(&w).unwrap());
        let decl_wpl = huffman::weighted_path_length(&run, &w).unwrap();
        let (base, t_base) = time_once(|| huffman_tree(&w).unwrap());
        let base_wpl = wpl_base(&base, &w);
        assert_eq!(decl_wpl, base_wpl, "equal weighted path length");
        rows.push(vec![
            k.to_string(),
            decl_wpl.to_string(),
            base_wpl.to_string(),
            secs(t_decl),
            secs(t_base),
        ]);
    }
    println!(
        "{}",
        render_table(&["k", "decl_wpl", "classical_wpl", "decl_s", "classical_s"], &rows)
    );
    println!("equal WPL on every row ⇒ the declarative tree is optimal");
}

fn e7_tsp(quick: bool) {
    println!("\n== E7  Greedy TSP chains (Section 5, sub-optimals) ==");
    let sizes: &[usize] = if quick { &[16, 32, 64] } else { &[16, 32, 64, 128] };
    let mut rows = Vec::new();
    for &n in sizes {
        let g = workload::complete_geometric(n, 42);
        let (decl, t_decl) = time_once(|| tsp::run_greedy(&g).unwrap());
        assert!(is_hamiltonian_path(g.n, &decl));
        let (chain, _) = time_once(|| greedy_chain(g.n, &g.edges));
        let (nn, _) = time_once(|| nearest_neighbour(g.n, &g.edges, 0));
        rows.push(vec![
            n.to_string(),
            total_cost(&decl).to_string(),
            total_cost(&chain).to_string(),
            total_cost(&nn).to_string(),
            secs(t_decl),
        ]);
    }
    println!(
        "{}",
        render_table(&["n", "decl_cost", "greedy_chain", "nearest_nb", "decl_s"], &rows)
    );
    println!("decl_cost equals greedy_chain on every row; both are heuristics near nearest_nb");
}

fn e8_spanning(quick: bool) {
    println!("\n== E8  Spanning trees (Example 3): every run yields a spanning tree ==");
    let sizes: &[usize] = if quick { &[64, 128] } else { &[64, 128, 256, 512] };
    let mut rows = Vec::new();
    for &n in sizes {
        let g = workload::connected_graph(n, 2 * n, 100, 42);
        let (stage_tree, t_stage) = time_once(|| spanning::run_stage(&g, 0).unwrap());
        assert!(spanning::is_spanning_tree(&g, 0, &stage_tree));
        let (choice_tree, t_choice) = time_once(|| spanning::run_choice(&g, 0).unwrap());
        assert!(spanning::is_spanning_tree(&g, 0, &choice_tree));
        rows.push(vec![
            n.to_string(),
            stage_tree.len().to_string(),
            secs(t_stage),
            secs(t_choice),
        ]);
    }
    println!(
        "{}",
        render_table(&["n", "tree_edges", "stage_exec_s", "generic_fixpoint_s"], &rows)
    );
}

fn a1_ablation(quick: bool) {
    println!("\n== A1  Ablation: (R,Q,L) executor vs generic re-scan fixpoint (sorting) ==");
    let sizes: &[usize] = if quick { &[64, 128, 256] } else { &[64, 128, 256, 512, 1024] };
    let mut rows = Vec::new();
    let (mut rql_s, mut gen_s) = (Vec::new(), Vec::new());
    for &n in sizes {
        let items = workload::random_items(n, 42);
        let compiled = sorting::compiled();
        let edb = sorting::edb(&items);
        let (_, t_rql) = time_once(|| compiled.run_greedy(&edb).unwrap());
        let (_, t_gen) = time_once(|| compiled.run_generic(&edb).unwrap());
        rql_s.push(Sample { size: n as u64, secs: t_rql });
        gen_s.push(Sample { size: n as u64, secs: t_gen });
        rows.push(vec![
            n.to_string(),
            secs(t_rql),
            secs(t_gen),
            format!("{:.0}", t_gen / t_rql.max(1e-9)),
        ]);
    }
    println!("{}", render_table(&["n", "rql_s", "generic_s", "speedup"], &rows));
    println!(
        "scaling exponents: rql {:.2} (≈1), generic {:.2} (≈2+) — the storage structure \
         delivers the paper's bounds",
        fit_exponent(&rql_s),
        fit_exponent(&gen_s)
    );
}
