//! Seeded pseudo-random numbers without external crates.
//!
//! [`SplitMix64`] (Steele, Lea & Flood 2014) seeds and drives
//! [`Rng`], a xoshiro256** generator (Blackman & Vigna 2018) — the
//! same construction `rand`'s small-rng family uses. Both are fully
//! deterministic in the seed on every platform, which is what the
//! golden observability tests and the `BENCH_*.json` trajectories
//! rely on.

/// The SplitMix64 generator: a 64-bit state mixed through two
/// xor-shift-multiply rounds. Primarily a seed expander, but a fine
/// standalone generator too.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator over `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workspace's general-purpose seeded PRNG.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// A generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64 (the seeding procedure xoshiro's authors recommend).
    pub fn new(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`. `n` must be positive. Unbiased via
    /// rejection sampling (deterministic in the seed regardless).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Zone rejection: accept only draws below the largest multiple
        // of n representable in u64.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// `true` with probability 1/2.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(7);
        let mut seen = [false; 8];
        for _ in 0..512 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn range_i64_hits_both_endpoints() {
        let mut r = Rng::new(9);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        Rng::new(5).shuffle(&mut a);
        Rng::new(5).shuffle(&mut b);
        assert_eq!(a, b, "same seed, same shuffle");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        let mut c: Vec<u32> = (0..50).collect();
        Rng::new(6).shuffle(&mut c);
        assert_ne!(a, c, "different seeds diverge");
    }
}
