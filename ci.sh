#!/usr/bin/env bash
# CI entry point — everything runs offline against the vendored/in-tree
# dependency set (the workspace has zero registry dependencies).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== tests =="
cargo test -q --offline --workspace

echo "== format =="
cargo fmt --all --check

echo "== smoke: gbc run with observability =="
stats_json="$(mktemp)"
trap 'rm -f "$stats_json"' EXIT
./target/release/gbc run programs/prim.dl programs/graph_small.dl \
    --stats --stats-json "$stats_json" >/dev/null
grep -q '"gamma_steps": 5' "$stats_json" || {
    echo "unexpected gamma_steps in $stats_json" >&2
    exit 1
}

echo "CI OK"
