//! Multi-tenant closed-loop load harness — the `gbc serve` dress
//! rehearsal.
//!
//! ROADMAP item 1 wants a long-lived server answering evaluation
//! requests over compiled programs; its stated prerequisite is sharing
//! a plan-compiled [`Compiled`] and its EDB across threads (`Send +
//! Sync`). This module exercises exactly that shape without the
//! network: a fixed set of **tenants** (program + EDB pairs, compiled
//! once), a pool of concurrent **sessions** that each issue a fixed
//! number of back-to-back evaluation requests against their tenant, and
//! per-request latency recorded into mergeable histograms
//! ([`gbc_telemetry::Histogram`]).
//!
//! The loop is *closed*: each session performs `requests` evaluations
//! and stops. That makes the semantic work of a load run — γ-steps,
//! heap operations, tuples derived per request — a machine-independent
//! constant, which is what lets `experiments --compare` hard-gate those
//! counters in CI while treating the timing columns as informational.
//!
//! Sessions are scheduled over the same in-tree [`WorkerPool`] the
//! engine uses for saturation fan-out; each request itself runs the
//! serial engine (`threads = 1`), so the measured concurrency is
//! request-level, not intra-query.

use std::time::Instant;

use gbc_core::{Compiled, GreedyConfig};
use gbc_engine::WorkerPool;
use gbc_greedy::{matching, prim, sorting, workload};
use gbc_storage::Database;
use gbc_telemetry::{Histogram, Json, Snapshot};

/// One shareable workload: a compiled program and the EDB its requests
/// evaluate against.
pub struct Tenant {
    /// Stable name (the `tenant` column of the bench rows).
    pub name: &'static str,
    /// The plan-compiled program, shared read-only by every session.
    pub compiled: Compiled,
    /// The extensional database, shared read-only by every session.
    pub edb: Database,
}

/// The standard three-tenant mix: Prim's MST (graph workload, seeded),
/// sorting (the paper's heap-sort-by-choice), and greedy matching (two
/// choice FDs). Seeds are fixed so every run — local or CI — evaluates
/// the same requests.
pub fn standard_tenants() -> Vec<Tenant> {
    let g = workload::connected_graph(64, 3 * 64, 1000, 42);
    let (prim_c, prim_edb) = prim::prepared(&g, 0);
    let items = workload::random_items(256, 42);
    let arcs = workload::random_arcs(64, 256, 42);
    vec![
        Tenant { name: "prim", compiled: prim_c, edb: prim_edb },
        Tenant { name: "sort", compiled: sorting::compiled(), edb: sorting::edb(&items) },
        Tenant { name: "matching", compiled: matching::compiled(), edb: arcs.to_edb() },
    ]
}

/// Per-tenant aggregate of a load run.
pub struct TenantReport {
    /// Tenant name.
    pub name: &'static str,
    /// Sessions that ran against this tenant.
    pub sessions: usize,
    /// Total requests completed.
    pub requests: u64,
    /// Merged per-request latency histogram (nanoseconds).
    pub latency: Histogram,
    /// Counter snapshot of ONE request — every request against a tenant
    /// performs identical semantic work, asserted during the run.
    pub per_request: Snapshot,
}

/// The outcome of one load run.
pub struct LoadReport {
    /// Per-tenant aggregates, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Concurrent sessions.
    pub sessions: usize,
    /// Worker threads the sessions were scheduled over.
    pub threads: usize,
    /// Requests per session.
    pub requests_per_session: u64,
    /// Wall-clock of the whole run, in seconds.
    pub wall_secs: f64,
}

impl LoadReport {
    /// Total requests completed across tenants.
    pub fn total_requests(&self) -> u64 {
        self.tenants.iter().map(|t| t.requests).sum()
    }

    /// Aggregate throughput in requests per second.
    pub fn req_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.total_requests() as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// All tenants' latency histograms merged (exact — shared grid).
    pub fn merged_latency(&self) -> Histogram {
        let mut all = Histogram::default();
        for t in &self.tenants {
            all.merge(&t.latency);
        }
        all
    }
}

/// Run `sessions` concurrent closed-loop sessions over `threads`
/// workers, each issuing `requests_per_session` evaluation requests.
/// Session `s` talks to tenant `s % tenants.len()`, so every tenant
/// serves a deterministic share of the sessions.
///
/// # Panics
/// When a request fails to evaluate, or when two requests against the
/// same tenant disagree on their semantic counters — either would mean
/// the shared-database contract is broken, which is precisely what this
/// harness exists to catch.
pub fn serve_load(
    tenants: &[Tenant],
    sessions: usize,
    threads: usize,
    requests_per_session: u64,
) -> LoadReport {
    assert!(!tenants.is_empty() && sessions > 0 && requests_per_session > 0);
    let pool = WorkerPool::new(threads);
    let t_run = Instant::now();
    // One result per session: (latency histogram, per-request snapshot).
    let per_session: Vec<(Histogram, Snapshot)> = pool.run(sessions, |s, _worker| {
        let tenant = &tenants[s % tenants.len()];
        let mut latency = Histogram::default();
        let mut snapshot: Option<Snapshot> = None;
        for _ in 0..requests_per_session {
            let t0 = Instant::now();
            let run = tenant
                .compiled
                .run_greedy_with(&tenant.edb, GreedyConfig::default())
                .unwrap_or_else(|e| panic!("tenant `{}` request failed: {e}", tenant.name));
            latency.record(t0.elapsed().as_nanos() as u64);
            match &snapshot {
                None => snapshot = Some(run.snapshot),
                Some(first) => assert_eq!(
                    *first, run.snapshot,
                    "tenant `{}`: request counters drifted within a session",
                    tenant.name
                ),
            }
        }
        (latency, snapshot.expect("at least one request"))
    });
    let wall_secs = t_run.elapsed().as_secs_f64();
    aggregate(tenants, per_session, sessions, threads, requests_per_session, wall_secs)
}

/// [`serve_load`] measured **end-to-end over TCP** against a real
/// `gbc-serve` server: an ephemeral-port [`gbc_serve::Server`] is
/// booted with every tenant installed as a session, and each session
/// loop issues its requests as `POST /run` over a fresh connection via
/// the in-tree blocking client — so the recorded latencies include
/// connect, HTTP framing, evaluation and response serialization, which
/// is what a deployed `gbc serve` client would see.
///
/// Per-request semantic counters are reconstructed from each response's
/// `counters` object ([`Snapshot::from_json`]) and held to the same
/// drift assertions as the in-process harness; canonical result text
/// must also be identical across every request to a tenant. Row keys
/// and counter values are byte-compatible with [`serve_load`] rows, so
/// `experiments --compare` gates the same columns either way.
///
/// # Panics
/// On any transport error, non-200 response, counter drift, or result
/// drift — each would mean the shared-server contract is broken.
pub fn serve_load_tcp(
    tenants: &[Tenant],
    sessions: usize,
    threads: usize,
    requests_per_session: u64,
) -> LoadReport {
    assert!(!tenants.is_empty() && sessions > 0 && requests_per_session > 0);
    let server = gbc_serve::Server::bind("127.0.0.1:0").expect("bind ephemeral port");
    for t in tenants {
        server.state().install(gbc_serve::Session::new(
            t.name,
            "<bench>",
            t.compiled.clone(),
            t.edb.clone(),
        ));
    }
    let addr = server.local_addr().to_string();
    let handle = server.spawn(threads);

    let pool = WorkerPool::new(threads);
    let t_run = Instant::now();
    let per_session: Vec<(Histogram, Snapshot)> = pool.run(sessions, |s, _worker| {
        let tenant = &tenants[s % tenants.len()];
        let body = format!("{{\"session\": \"{}\"}}", tenant.name);
        let mut latency = Histogram::default();
        let mut snapshot: Option<Snapshot> = None;
        let mut result: Option<String> = None;
        for _ in 0..requests_per_session {
            let t0 = Instant::now();
            let (status, reply) = gbc_serve::client::post_json(&addr, "/run", &body)
                .unwrap_or_else(|e| panic!("tenant `{}` request failed: {e}", tenant.name));
            latency.record(t0.elapsed().as_nanos() as u64);
            assert_eq!(status, 200, "tenant `{}` answered {status}: {reply}", tenant.name);
            let json = Json::parse(reply.trim())
                .unwrap_or_else(|e| panic!("tenant `{}` reply unparseable: {e}", tenant.name));
            let mut snap = json
                .get("counters")
                .ok_or_else(|| "reply missing `counters`".to_owned())
                .and_then(Snapshot::from_json)
                .unwrap_or_else(|e| panic!("tenant `{}`: {e}", tenant.name));
            // The server runs under full telemetry, so its snapshots
            // carry the per-round delta history; the in-process harness
            // runs counters-only. History is a stats-plane detail, not
            // a pinned counter — drop it so the two transports compare
            // (and gate) on identical semantic ground.
            snap.delta_history.clear();
            let text = json
                .get("result")
                .and_then(|r| r.as_str())
                .unwrap_or_else(|| panic!("tenant `{}` reply missing `result`", tenant.name));
            match &snapshot {
                None => snapshot = Some(snap),
                Some(first) => assert_eq!(
                    *first, snap,
                    "tenant `{}`: request counters drifted over TCP",
                    tenant.name
                ),
            }
            match &result {
                None => result = Some(text.to_owned()),
                Some(first) => assert_eq!(
                    first, text,
                    "tenant `{}`: canonical results drifted over TCP",
                    tenant.name
                ),
            }
        }
        (latency, snapshot.expect("at least one request"))
    });
    let wall_secs = t_run.elapsed().as_secs_f64();
    handle.shutdown();
    aggregate(tenants, per_session, sessions, threads, requests_per_session, wall_secs)
}

/// Fold per-session results into per-tenant reports, asserting counter
/// agreement across sessions of the same tenant.
fn aggregate(
    tenants: &[Tenant],
    per_session: Vec<(Histogram, Snapshot)>,
    sessions: usize,
    threads: usize,
    requests_per_session: u64,
    wall_secs: f64,
) -> LoadReport {
    let mut reports: Vec<TenantReport> = tenants
        .iter()
        .map(|t| TenantReport {
            name: t.name,
            sessions: 0,
            requests: 0,
            latency: Histogram::default(),
            per_request: Snapshot::default(),
        })
        .collect();
    for (s, (latency, snapshot)) in per_session.into_iter().enumerate() {
        let report = &mut reports[s % tenants.len()];
        if report.sessions == 0 {
            report.per_request = snapshot;
        } else {
            assert_eq!(
                report.per_request, snapshot,
                "tenant `{}`: request counters drifted across sessions",
                report.name
            );
        }
        report.sessions += 1;
        report.requests += requests_per_session;
        report.latency.merge(&latency);
    }
    LoadReport { tenants: reports, sessions, threads, requests_per_session, wall_secs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_run_counts_every_request() {
        let tenants = standard_tenants();
        let report = serve_load(&tenants, 3, 2, 2);
        assert_eq!(report.total_requests(), 6);
        assert_eq!(report.tenants.len(), 3);
        for t in &report.tenants {
            assert_eq!(t.sessions, 1);
            assert_eq!(t.latency.count(), t.requests);
            assert!(t.per_request.gamma_steps > 0, "tenant `{}` did no γ work", t.name);
        }
        assert!(report.req_per_sec() > 0.0);
        assert_eq!(report.merged_latency().count(), 6);
    }

    #[test]
    fn tcp_transport_preserves_per_request_counters() {
        // The whole point of the TCP harness: going through the real
        // server must not change one semantic counter (or byte of
        // result) relative to calling the executor directly.
        let tenants = standard_tenants();
        let direct = serve_load(&tenants, 3, 1, 1);
        let over_tcp = serve_load_tcp(&tenants, 3, 2, 2);
        assert_eq!(over_tcp.total_requests(), 6);
        for (a, b) in direct.tenants.iter().zip(over_tcp.tenants.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.per_request, b.per_request, "tenant `{}` drifted over TCP", a.name);
        }
    }

    #[test]
    fn session_fanout_is_deterministic_in_counters() {
        // Same tenants, different concurrency: per-request counters must
        // be identical — only timings may differ.
        let tenants = standard_tenants();
        let serial = serve_load(&tenants, 3, 1, 1);
        let parallel = serve_load(&tenants, 6, 4, 2);
        for (a, b) in serial.tenants.iter().zip(parallel.tenants.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.per_request, b.per_request, "tenant `{}` drifted", a.name);
        }
    }
}
