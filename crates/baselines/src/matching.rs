//! Greedy min-cost maximal matching (Example 7's comparator):
//! sort the arcs by cost, accept an arc when neither endpoint is
//! saturated. `O(e log e)`.
//!
//! The paper treats a *directed* graph and asserts two functional
//! dependencies via `choice(Y, X)` and `choice(X, Y)`: each source
//! matches one target and vice versa. We mirror that exactly —
//! saturation is tracked separately for the source and target roles, so
//! on a directed graph a node may appear once as a source *and* once as
//! a target, just as the declarative program permits.

use crate::Edge;

/// Greedy matching on directed arcs. Ties break on `(cost, from, to)` —
/// the same order the declarative executor pops congruent candidates.
pub fn greedy_matching(n: usize, edges: &[Edge]) -> Vec<Edge> {
    let mut sorted: Vec<&Edge> = edges.iter().collect();
    sorted.sort_by_key(|e| (e.cost, e.from, e.to));
    let mut source_used = vec![false; n];
    let mut target_used = vec![false; n];
    let mut matching = Vec::new();
    for e in sorted {
        if source_used[e.from as usize] || target_used[e.to as usize] {
            continue;
        }
        source_used[e.from as usize] = true;
        target_used[e.to as usize] = true;
        matching.push(*e);
    }
    matching
}

/// Is `m` a matching (no shared source, no shared target) over arcs?
pub fn is_matching(m: &[Edge]) -> bool {
    let mut froms: Vec<u32> = m.iter().map(|e| e.from).collect();
    let mut tos: Vec<u32> = m.iter().map(|e| e.to).collect();
    froms.sort_unstable();
    tos.sort_unstable();
    froms.windows(2).all(|w| w[0] != w[1]) && tos.windows(2).all(|w| w[0] != w[1])
}

/// Is `m` maximal w.r.t. `edges` (no arc can be added)?
pub fn is_maximal(n: usize, edges: &[Edge], m: &[Edge]) -> bool {
    let mut source_used = vec![false; n];
    let mut target_used = vec![false; n];
    for e in m {
        source_used[e.from as usize] = true;
        target_used[e.to as usize] = true;
    }
    edges.iter().all(|e| source_used[e.from as usize] || target_used[e.to as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total_cost;

    #[test]
    fn picks_cheap_disjoint_arcs() {
        let edges =
            [Edge::new(0, 1, 1), Edge::new(0, 2, 2), Edge::new(3, 1, 3), Edge::new(3, 2, 4)];
        let m = greedy_matching(4, &edges);
        // (0,1,1) then (3,2,4): (0,2) blocked by source 0, (3,1) by target 1.
        assert_eq!(m, vec![Edge::new(0, 1, 1), Edge::new(3, 2, 4)]);
        assert!(is_matching(&m));
        assert!(is_maximal(4, &edges, &m));
        assert_eq!(total_cost(&m), 5);
    }

    #[test]
    fn empty_edge_set() {
        let m = greedy_matching(3, &[]);
        assert!(m.is_empty());
        assert!(is_matching(&m));
        assert!(is_maximal(3, &[], &m));
    }

    #[test]
    fn source_and_target_roles_are_independent() {
        // 0→1 and 1→2 share node 1 in different roles: both accepted,
        // per the directed FD reading of Example 7.
        let edges = [Edge::new(0, 1, 1), Edge::new(1, 2, 2)];
        let m = greedy_matching(3, &edges);
        assert_eq!(m.len(), 2);
        assert!(is_matching(&m));
    }

    #[test]
    fn maximality_detects_missing_arcs() {
        let edges = [Edge::new(0, 1, 1), Edge::new(2, 3, 2)];
        let partial = [Edge::new(0, 1, 1)];
        assert!(!is_maximal(4, &edges, &partial));
    }
}
